package semantics

import (
	"container/heap"
	"fmt"
	"runtime"
	"slices"

	"mdmatch/internal/record"
	"mdmatch/internal/values"
)

// The worklist chase, over the interned value store.
//
// The seed implementation of Enforce rescanned all |I1|×|I2| tuple
// pairs for every rule on every pass. The worklist keeps the exact
// firing order of that reference loop — rules in Σ order within
// pass-structured rounds, pairs in ascending (left, right) order, one
// visit per (rule, pair) per pass — while visiting only pairs that can
// possibly fire:
//
//   - a rule whose LHS contains hash-encodable conjuncts (equality,
//     Soundex) is seeded by a blocking-style join: both sides are keyed
//     on the encodable conjuncts' interned value/code IDs, and only
//     pairs in the same block are ever visited (other pairs fail the
//     LHS trivially);
//   - a rule with no encodable conjunct scans the full cross product
//     once, on its first pass;
//   - on later passes, a rule revisits only pairs involving tuples
//     whose cells some firing touched *on a column the rule reads or
//     writes* since the rule last saw them (the distinct-value
//     frontier: a touch on a column outside the rule's LHS ∪ RHS
//     cannot change any of its verdicts): an untouched pair keeps the
//     verdict of its previous visit, so skipping it cannot change the
//     outcome;
//   - when a firing touches tuples during a rule's own scan, pairs that
//     lie ahead of the scan position are re-enqueued immediately (the
//     reference loop would reach them later in the same pass), and
//     pairs behind it are deferred to the next pass (the reference loop
//     could not revisit them either).
//
// All per-visit work runs on interned value IDs (internal/values):
// equality conjuncts compare IDs, Soundex conjuncts compare interned
// code IDs, similarity conjuncts hit (minID, maxID)-canonical verdict
// matrices, and the RHS-differs check compares IDs — the tuple's string
// values are only touched on a verdict-cache miss.
//
// Equivalence of the firing sequences follows by induction: both loops
// visit a superset of the pairs that can fire, in the same order, and
// decide each visit from the current instance state alone. The property
// tests in worklist_test.go check the resulting instance, Applications
// and Passes against EnforceFullScan and against a verbatim copy of the
// seed implementation.

// seedExec is one compiled seed field: the hoisted ID slices of both
// columns and, for Soundex fields, the shared dictionary that interns
// the codes.
type seedExec struct {
	lids, rids []values.ID
	dict       *values.Dict
	sdx        bool
}

// wlMD is one rule's worklist state.
type wlMD struct {
	cm compiledMD
	// lhs/rhs are the conjuncts and RHS pairs compiled against the
	// interned store.
	lhs []conjExec
	rhs []rhsExec
	// relL/relR flag the columns whose cells this rule reads (LHS) or
	// writes (RHS) per side: touches outside them cannot change any of
	// the rule's verdicts and are not re-enqueued.
	relL, relR []bool
	// seeds are the compiled join-key fields (empty for rules without
	// encodable conjuncts).
	seeds []seedExec
	// speculable: every LHS conjunct evaluates on pure interned reads
	// (no kindDirect fallback), so chunks of this rule's scan may be
	// evaluated on worker goroutines (see parallel.go).
	speculable bool
	// dirtyL/dirtyR hold tuple indices touched on relevant columns by
	// firings since this rule last consumed them.
	dirtyL, dirtyR map[int]struct{}
	// idxL/idxR are the blocking-style join indexes over the seed
	// fields (nil for rules without any).
	idxL, idxR *sideIndex
}

func (m *wlMD) blockable() bool { return m.idxL != nil }

// key folds tuple ti's seed-field encodings on one side into a uint64
// join key. Equal field encodings always fold to equal keys, which is
// all blocking soundness needs — visit re-tests the full LHS, so a
// (vanishingly rare) fold collision between distinct encodings merely
// widens a block. Each step is a bijective mix (splitmix64 finalizer),
// so single-field keys — the common case — partition exactly.
func (m *wlMD) key(side, ti int) uint64 {
	var key uint64
	for si := range m.seeds {
		s := &m.seeds[si]
		var id values.ID
		if side == 0 {
			id = s.lids[ti]
		} else {
			id = s.rids[ti]
		}
		enc := uint64(id)
		if s.sdx {
			enc = uint64(uint32(s.dict.SoundexID(id)))
		}
		key = mix64(key ^ enc)
	}
	return key
}

// mix64 is the splitmix64 finalizer: a bijection on uint64 with full
// avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sideIndex maps one side's tuples to their current candidate join key.
type sideIndex struct {
	keys    []uint64
	buckets map[uint64][]int32
}

func newSideIndex(n int) *sideIndex {
	return &sideIndex{keys: make([]uint64, n), buckets: make(map[uint64][]int32, n)}
}

// add registers tuple i under key (initial build; no previous key).
func (ix *sideIndex) add(i int, key uint64) {
	ix.keys[i] = key
	ix.buckets[key] = append(ix.buckets[key], int32(i))
}

// set updates tuple i's key, moving it between buckets.
func (ix *sideIndex) set(i int, key uint64) {
	old := ix.keys[i]
	if old == key {
		return
	}
	ids := ix.buckets[old]
	for k, have := range ids {
		if have == int32(i) {
			ids[k] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, old)
	} else {
		ix.buckets[old] = ids
	}
	ix.keys[i] = key
	ix.buckets[key] = append(ix.buckets[key], int32(i))
}

// pairHeap is a min-heap of pair order codes (i1*n2 + i2), used only
// for the rare mid-scan re-enqueues; the bulk of a blocked scan's
// candidates travels in a sorted slice.
type pairHeap []int64

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type worklist struct {
	d      *record.PairInstance
	ch     *chase
	cache  *evalCache
	mds    []*wlMD
	n1, n2 int
	res    EnforceResult

	// scan-local state of the rule currently being scanned.
	scanning     *wlMD
	bitsL, bitsR []bool // dense filtered scan: side membership filters
	heapActive   bool   // blocked scan: re-enqueue enabled
	base         []int64
	baseIdx      int
	over         *pairHeap
	overSet      map[int64]struct{}
	curOrd       int64

	ordScratch []int64 // reused across blocked scans

	// workers/spec: the deterministic parallel layer (parallel.go).
	// spec stays nil at workers <= 1, keeping the serial chase exactly
	// as it was.
	workers int
	spec    *speculator
}

func newWorklist(out *record.PairInstance, mds []compiledMD, workers int) *worklist {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := &worklist{d: out, n1: out.Left.Len(), n2: out.Right.Len(), workers: workers}
	w.cache = newEvalCache(out, mds)
	a1, a2 := out.Ctx.Left.Arity(), out.Ctx.Right.Arity()
	for i := range mds {
		m := &wlMD{
			cm:     mds[i],
			lhs:    w.cache.compileConjuncts(&mds[i]),
			rhs:    w.cache.compileRHS(&mds[i]),
			relL:   make([]bool, a1),
			relR:   make([]bool, a2),
			dirtyL: make(map[int]struct{}),
			dirtyR: make(map[int]struct{}),
		}
		for _, c := range mds[i].lhs {
			m.relL[c.Left], m.relR[c.Right] = true, true
		}
		for _, p := range mds[i].rhs {
			m.relL[p[0]], m.relR[p[1]] = true, true
		}
		for _, s := range mds[i].seeds {
			m.seeds = append(m.seeds, seedExec{
				lids: w.cache.vids[0][s.lcol],
				rids: w.cache.vids[1][s.rcol],
				dict: w.cache.dict(0, s.lcol),
				sdx:  s.sdx,
			})
		}
		if len(m.seeds) > 0 {
			m.idxL = newSideIndex(w.n1)
			for j := 0; j < w.n1; j++ {
				m.idxL.add(j, m.key(0, j))
			}
			m.idxR = newSideIndex(w.n2)
			for j := 0; j < w.n2; j++ {
				m.idxR.add(j, m.key(1, j))
			}
		}
		m.speculable = true
		for _, c := range m.lhs {
			if c.kind == kindDirect {
				m.speculable = false
				break
			}
		}
		w.mds = append(w.mds, m)
	}
	w.ch = newChase(out)
	w.ch.onTouch = w.touched
	if workers > 1 {
		w.spec = newSpeculator(workers, w.n1, w.n2)
		w.warmDerived()
	}
	return w
}

func (w *worklist) run() (EnforceResult, error) {
	w.res.Instance = w.d
	maxPasses := w.ch.cellCount() + 2
	for {
		w.res.Passes++
		if w.res.Passes > maxPasses {
			return EnforceResult{}, fmt.Errorf("semantics: chase exceeded %d passes (non-terminating value resolution?)", maxPasses)
		}
		fired := false
		for _, m := range w.mds {
			if w.scanMD(m, w.res.Passes) {
				fired = true
			}
		}
		if !fired {
			break
		}
	}
	// Operator calls made through the verdict caches (cache misses)
	// count as LHS evaluations exactly once, totalled at the end.
	// Speculative evaluations merged into the caches (parallel.go) were
	// never counted by the caches themselves and are added here.
	w.res.Stats.LHSEvaluations += w.cache.operatorEvaluations()
	if w.spec != nil {
		w.res.Stats.LHSEvaluations += w.spec.evals
	}
	return w.res, nil
}

// touched records a cell a firing just changed: the interned value ID
// is refreshed, every rule reading or writing the column must
// reconsider the tuple's pairs, and the rule currently scanning
// re-enqueues pairs ahead of its scan position.
func (w *worklist) touched(in *record.Instance, ti, ai int, v string) {
	if in == w.d.Left {
		w.cache.cellChanged(0, ai, ti, v)
		w.sideTouched(true, ti, ai)
	}
	if in == w.d.Right {
		if in != w.d.Left { // self-match shares the ID slices
			w.cache.cellChanged(1, ai, ti, v)
		}
		w.sideTouched(false, ti, ai)
	}
}

func (w *worklist) sideTouched(left bool, ti, ai int) {
	for _, m := range w.mds {
		if left {
			if m.relL[ai] {
				m.dirtyL[ti] = struct{}{}
			}
		} else if m.relR[ai] {
			m.dirtyR[ti] = struct{}{}
		}
	}
	s := w.scanning
	if s == nil {
		return
	}
	if left {
		if !s.relL[ai] {
			return // the scanning rule's verdicts cannot have changed
		}
	} else if !s.relR[ai] {
		return
	}
	// A relevant touch invalidates every speculation of the current
	// chunk that reads this tuple (the stamp reaches sp.clock, and
	// validity requires a stamp strictly below the chunk's epoch).
	if sp := w.spec; sp != nil {
		if left {
			sp.stampL[ti] = sp.clock
		} else {
			sp.stampR[ti] = sp.clock
		}
	}
	if w.bitsL != nil { // dense filtered scan: widen the filters
		if left {
			w.bitsL[ti] = true
		} else {
			w.bitsR[ti] = true
		}
		return
	}
	if !w.heapActive { // dense unfiltered scan enumerates everything anyway
		return
	}
	// Blocked scan: the touched tuple's join key may have changed —
	// refresh it, then enqueue the pairs it now joins with.
	if left {
		s.idxL.set(ti, s.key(0, ti))
		for _, j := range s.idxR.buckets[s.idxL.keys[ti]] {
			w.push(ti, int(j))
		}
	} else {
		s.idxR.set(ti, s.key(1, ti))
		for _, i := range s.idxL.buckets[s.idxR.keys[ti]] {
			w.push(int(i), ti)
		}
	}
}

// push enqueues a candidate pair into the current blocked scan if it
// lies ahead of the scan position and is not already pending. Pairs
// behind the position stay in the dirty sets for the next pass.
func (w *worklist) push(i1, i2 int) {
	ord := int64(i1)*int64(w.n2) + int64(i2)
	if ord <= w.curOrd {
		return
	}
	if _, ok := slices.BinarySearch(w.base[w.baseIdx:], ord); ok {
		return
	}
	if _, ok := w.overSet[ord]; ok {
		return
	}
	w.overSet[ord] = struct{}{}
	heap.Push(w.over, ord)
}

// visit evaluates one candidate (rule, pair) and fires on a violation.
// The whole decision runs on interned IDs; strings are only read on a
// verdict-cache miss or for uncacheable conjuncts.
func (w *worklist) visit(m *wlMD, i1, i2 int) bool {
	w.res.Stats.PairsExamined++
	for ci := range m.lhs {
		c := &m.lhs[ci]
		switch c.kind {
		case kindEq:
			if c.lids[i1] != c.rids[i2] {
				return false
			}
		case kindSdx:
			if c.dict.SoundexID(c.lids[i1]) != c.dict.SoundexID(c.rids[i2]) {
				return false
			}
		case kindCached:
			if !c.cache.Similar(c.lids[i1], c.rids[i2]) {
				return false
			}
		default: // kindDirect: conjunct over the matrix-size cap
			w.res.Stats.LHSEvaluations++
			if !c.op.Similar(w.d.Left.Tuples[i1].Values[c.lcol], w.d.Right.Tuples[i2].Values[c.rcol]) {
				return false
			}
		}
	}
	rhsEqual := true
	for ri := range m.rhs {
		if m.rhs[ri].lids[i1] != m.rhs[ri].rids[i2] {
			rhsEqual = false
			break
		}
	}
	if rhsEqual {
		return false
	}
	w.ch.fire(&m.cm, i1, i2)
	w.res.Applications++
	w.res.Stats.RuleFirings++
	return true
}

func (w *worklist) scanMD(m *wlMD, pass int) bool {
	w.scanning = m
	defer func() {
		w.scanning = nil
		w.bitsL, w.bitsR = nil, nil
		w.heapActive = false
		w.base, w.baseIdx = nil, 0
		w.over, w.overSet = nil, nil
	}()
	if m.blockable() {
		return w.scanBlocked(m, pass)
	}
	return w.scanDense(m, pass)
}

// scanDense visits pairs in ascending order by direct enumeration: the
// full cross product on the first pass, and only rows/columns of dirty
// tuples afterwards. Later passes still sweep the n1×n2 grid to test
// the filters — a deliberate trade: the boolean check is orders of
// magnitude cheaper than a verdict lookup, and a rule that lands here
// (no encodable conjunct) already paid a full first-pass scan that
// dominates asymptotically.
func (w *worklist) scanDense(m *wlMD, pass int) bool {
	filtered := pass > 1
	if filtered {
		w.bitsL = make([]bool, w.n1)
		w.bitsR = make([]bool, w.n2)
		for i := range m.dirtyL {
			w.bitsL[i] = true
		}
		for i := range m.dirtyR {
			w.bitsR[i] = true
		}
	}
	m.dirtyL = make(map[int]struct{})
	m.dirtyR = make(map[int]struct{})
	if w.spec != nil && m.speculable && int64(w.n1)*int64(w.n2) >= int64(specMinPairs) {
		return w.scanDenseSpec(m, filtered)
	}
	fired := false
	for i1 := 0; i1 < w.n1; i1++ {
		if filtered && !w.bitsL[i1] {
			// Only dirty right columns qualify in this row — unless a
			// mid-row firing touches this very left tuple, so both
			// filters are re-read per cell (they only ever flip
			// false→true, exactly like the reference loop's per-cell
			// check).
			for i2 := 0; i2 < w.n2; i2++ {
				if !w.bitsR[i2] && !w.bitsL[i1] {
					continue
				}
				if w.visit(m, i1, i2) {
					fired = true
				}
			}
			continue
		}
		for i2 := 0; i2 < w.n2; i2++ {
			if w.visit(m, i1, i2) {
				fired = true
			}
		}
	}
	return fired
}

// scanBlocked visits pairs in ascending order by merging a sorted
// candidate slice with a small overflow heap. The slice carries the
// bulk — the full key join on the first pass, dirty-tuple probes
// afterwards — sorted once and consumed in order; the heap only ever
// holds pairs that mid-scan firings enqueued ahead of the position via
// sideTouched, so the common visit costs an index increment, not a
// heap operation.
func (w *worklist) scanBlocked(m *wlMD, pass int) bool {
	// Keys of tuples touched since this rule's last scan are stale.
	for i := range m.dirtyL {
		m.idxL.set(i, m.key(0, i))
	}
	for j := range m.dirtyR {
		m.idxR.set(j, m.key(1, j))
	}
	base := w.ordScratch[:0]
	n2 := int64(w.n2)
	if pass == 1 {
		for key, lids := range m.idxL.buckets {
			rids, ok := m.idxR.buckets[key]
			if !ok {
				continue
			}
			for _, i := range lids {
				o := int64(i) * n2
				for _, j := range rids {
					base = append(base, o+int64(j))
				}
			}
		}
	} else {
		for i := range m.dirtyL {
			o := int64(i) * n2
			for _, j := range m.idxR.buckets[m.idxL.keys[i]] {
				base = append(base, o+int64(j))
			}
		}
		for j := range m.dirtyR {
			for _, i := range m.idxL.buckets[m.idxR.keys[j]] {
				base = append(base, int64(i)*n2+int64(j))
			}
		}
	}
	m.dirtyL = make(map[int]struct{})
	m.dirtyR = make(map[int]struct{})
	slices.Sort(base)
	base = slices.Compact(base) // dirtyL and dirtyR probes can overlap
	var over pairHeap
	w.base, w.baseIdx = base, 0
	w.over, w.overSet = &over, make(map[int64]struct{})
	w.heapActive = true
	w.curOrd = -1
	if w.spec != nil && m.speculable && len(base) >= specMinPairs {
		fired := w.commitBlockedSpec(m)
		w.ordScratch = base[:0]
		return fired
	}
	fired := false
	for {
		var ord int64
		switch {
		case w.baseIdx < len(w.base) && (over.Len() == 0 || w.base[w.baseIdx] < over[0]):
			ord = w.base[w.baseIdx]
			w.baseIdx++
		case over.Len() > 0:
			ord = heap.Pop(&over).(int64)
			delete(w.overSet, ord)
		default:
			w.ordScratch = base[:0]
			return fired
		}
		w.curOrd = ord
		if w.visit(m, int(ord/n2), int(ord%n2)) {
			fired = true
		}
	}
}
