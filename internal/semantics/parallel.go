package semantics

import (
	"container/heap"

	"mdmatch/internal/par"
	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// The deterministic parallel layer of the worklist chase: speculative
// parallel LHS evaluation with serial in-order commit.
//
// The chase is ORDER-SENSITIVE (enforcement is not confluent), so the
// firing sequence of the serial reference loop is the contract — the
// parallel chase must produce the exact same sequence. The protocol is
// phase-wise speculation:
//
//  1. Take the next CHUNK of the scan's candidate pairs (a slice of the
//     sorted base frontier, or a block of dense-grid rows).
//  2. PARALLEL PHASE: workers evaluate each candidate's full verdict —
//     LHS conjuncts and the RHS-differs check — against the CURRENT
//     instance. This phase performs pure reads only: interned ID
//     slices, pre-warmed derived forms (Dict.WarmDerived), verdict-
//     cache Peeks. Cache misses are answered by values.Cache.Compute
//     and buffered per worker; nothing shared is written, so the phase
//     is race-free by construction.
//  3. BARRIER, then the buffered cache fills merge into the shared
//     verdict caches (values.MergeFills; order-independent because
//     verdicts are pure and Store is idempotent — see values/spec.go).
//  4. SERIAL COMMIT: the committing goroutine walks the chunk in
//     exactly the reference merge order (base slice interleaved with
//     the overflow heap). A candidate whose speculation is still VALID
//     commits from the precomputed verdict; one whose inputs a
//     preceding commit touched re-evaluates serially, exactly like the
//     serial loop would.
//
// Validity is tracked by per-tuple stamps against a chunk epoch: every
// speculation of epoch E read tuple i1's left cells and tuple i2's
// right cells on the scanning rule's relevant columns; sideTouched
// stamps a tuple whenever a firing touches it on such a column, so a
// speculation is valid iff stampL[i1] < E && stampR[i2] < E. Since
// BENCH_exec measures ~12M LHS evaluations per ~11k firings,
// invalidation is rare and almost all verdicts commit without
// re-evaluation.
//
// What stays deterministic at any worker count: the firing sequence,
// and with it the stable instance, Applications, Passes, RuleFirings
// and PairsExamined (counted at commit, which visits the same pairs in
// the same order). LHSEvaluations is deterministic for a FIXED worker
// count but may differ slightly across worker counts: speculation can
// evaluate a (value, value) pair that a later commit in the same chunk
// makes unreachable. The equivalence property tests pin the former
// exactly and bound the latter.

// specChunk is the number of candidate pairs speculated per phase, and
// specMinPairs the frontier size below which a scan stays serial (a
// goroutine fan-out costs more than a handful of warm verdict lookups).
// Vars, not consts: the property tests shrink them to force many
// chunks, mid-chunk invalidations and the serial fallback on small
// datasets.
var (
	specChunk    = 1 << 15
	specMinPairs = 2048
)

// Speculative verdicts. specNone marks a cell the parallel phase did
// not evaluate (outside the dense filters at speculation time); it
// never validates, so the commit falls back to a serial visit.
const (
	specNoMatch uint8 = iota // LHS fails: pair only counts as examined
	specMatch                // LHS holds, RHS already equal: no firing
	specFire                 // LHS holds, RHS differs: fires
	specNone                 // not evaluated speculatively
)

// speculator is the per-chase parallel state.
type speculator struct {
	workers int
	// clock advances once per speculation phase; stampL/stampR record
	// the clock value at which a firing last touched the tuple on a
	// column relevant to the scanning rule.
	clock          int64
	stampL, stampR []int64
	// verdicts is the reusable per-chunk verdict buffer; fills the
	// per-worker cache-fill buffers (merged at each barrier).
	verdicts []uint8
	fills    [][]values.Fill
	// evals counts merged NEW cache fills — operator evaluations
	// performed by workers that the caches' own counters never saw.
	evals int64
}

func newSpeculator(workers, n1, n2 int) *speculator {
	return &speculator{
		workers: workers,
		stampL:  make([]int64, n1),
		stampR:  make([]int64, n2),
		fills:   make([][]values.Fill, workers),
	}
}

// warmDerived precomputes every lazily derived form the parallel phase
// could read: Soundex code IDs for kindSdx conjuncts, decoded runes for
// rune-evaluated cached conjuncts. The chase's value universes are
// fixed (enforcement never invents a value), so warming once at
// construction covers the whole run; without it, two workers could race
// on a dictionary's first-use memoization.
func (w *worklist) warmDerived() {
	for _, m := range w.mds {
		for i := range m.lhs {
			c := &m.lhs[i]
			switch c.kind {
			case kindSdx:
				c.dict.WarmDerived(0, false, true)
			case kindCached:
				if _, ok := c.op.(similarity.RuneSimilar); ok {
					w.cache.dict(0, c.lcol).WarmDerived(0, true, false)
					w.cache.dict(1, c.rcol).WarmDerived(0, true, false)
				}
			}
		}
	}
}

// specEval computes one candidate's full verdict on pure reads. Cache
// misses are evaluated with Compute and buffered into buf for the
// post-barrier merge. Only called for speculable rules (no kindDirect
// conjunct).
func (w *worklist) specEval(m *wlMD, i1, i2 int, buf *[]values.Fill) uint8 {
	for ci := range m.lhs {
		c := &m.lhs[ci]
		switch c.kind {
		case kindEq:
			if c.lids[i1] != c.rids[i2] {
				return specNoMatch
			}
		case kindSdx:
			if c.dict.SoundexID(c.lids[i1]) != c.dict.SoundexID(c.rids[i2]) {
				return specNoMatch
			}
		default: // kindCached
			a, b := c.lids[i1], c.rids[i2]
			v, known := c.cache.Peek(a, b)
			if !known {
				v = c.cache.Compute(a, b)
				*buf = append(*buf, values.Fill{Cache: c.cache, A: a, B: b, Verdict: v})
			}
			if !v {
				return specNoMatch
			}
		}
	}
	for ri := range m.rhs {
		if m.rhs[ri].lids[i1] != m.rhs[ri].rids[i2] {
			return specFire
		}
	}
	return specMatch
}

// commitPair commits one base candidate: from its speculative verdict
// when that is still valid (computed this chunk, and neither tuple
// touched on a relevant column since the chunk's epoch began), by a
// full serial visit otherwise. The committed effects are exactly
// visit's.
func (w *worklist) commitPair(m *wlMD, i1, i2 int, v uint8, epoch int64) bool {
	sp := w.spec
	if v == specNone || sp.stampL[i1] >= epoch || sp.stampR[i2] >= epoch {
		return w.visit(m, i1, i2)
	}
	w.res.Stats.PairsExamined++
	if v != specFire {
		return false
	}
	w.ch.fire(&m.cm, i1, i2)
	w.res.Applications++
	w.res.Stats.RuleFirings++
	return true
}

// speculate runs one parallel phase over a slice of base ords and
// merges the workers' cache fills, returning the chunk's epoch and the
// verdict slice (valid until the next phase).
func (w *worklist) speculate(m *wlMD, ords []int64) (int64, []uint8) {
	sp := w.spec
	sp.clock++
	epoch := sp.clock
	if cap(sp.verdicts) < len(ords) {
		sp.verdicts = make([]uint8, len(ords))
	}
	verdicts := sp.verdicts[:len(ords)]
	n2 := int64(w.n2)
	par.ForWorker(len(ords), sp.workers, func(wk, k int) {
		ord := ords[k]
		verdicts[k] = w.specEval(m, int(ord/n2), int(ord%n2), &sp.fills[wk])
	})
	sp.evals += values.MergeFills(sp.fills)
	return epoch, verdicts
}

// commitBlockedSpec is scanBlocked's merge loop with chunk-wise
// speculation: speculate the next base chunk, then commit base entries
// and overflow-heap pops in exactly the serial interleaving. Heap
// entries (mid-scan re-enqueues, rare) always take the serial visit
// path — they were never speculated.
func (w *worklist) commitBlockedSpec(m *wlMD) bool {
	n2 := int64(w.n2)
	over := w.over
	fired := false
	for w.baseIdx < len(w.base) || over.Len() > 0 {
		start := w.baseIdx
		end := min(start+specChunk, len(w.base))
		epoch, verdicts := w.speculate(m, w.base[start:end])
		for {
			if w.baseIdx < end && (over.Len() == 0 || w.base[w.baseIdx] < (*over)[0]) {
				ord := w.base[w.baseIdx]
				slot := w.baseIdx - start
				w.baseIdx++
				w.curOrd = ord
				if w.commitPair(m, int(ord/n2), int(ord%n2), verdicts[slot], epoch) {
					fired = true
				}
				continue
			}
			if over.Len() == 0 {
				break
			}
			if w.baseIdx < len(w.base) && w.base[w.baseIdx] < (*over)[0] {
				break // due after this chunk's base entries: next chunk
			}
			ord := heap.Pop(over).(int64)
			delete(w.overSet, ord)
			w.curOrd = ord
			if w.visit(m, int(ord/n2), int(ord%n2)) {
				fired = true
			}
		}
	}
	return fired
}

// scanDenseSpec is scanDense with row-block speculation: evaluate a
// block of grid rows in parallel (cells outside the current filters
// carry specNone), then commit the block with the serial sweep's exact
// filter logic. A filter widened by a mid-block commit is caught
// twice over: the widening touch stamps the tuple (invalidating its
// speculations), and the commit re-reads the filters at the same
// program points as the serial loop.
func (w *worklist) scanDenseSpec(m *wlMD, filtered bool) bool {
	sp := w.spec
	rows := specChunk / w.n2
	if rows < 1 {
		rows = 1
	}
	fired := false
	for r0 := 0; r0 < w.n1; r0 += rows {
		r1 := min(r0+rows, w.n1)
		sp.clock++
		epoch := sp.clock
		nCells := (r1 - r0) * w.n2
		if cap(sp.verdicts) < nCells {
			sp.verdicts = make([]uint8, nCells)
		}
		verdicts := sp.verdicts[:nCells]
		par.ForWorker(nCells, sp.workers, func(wk, k int) {
			i1 := r0 + k/w.n2
			i2 := k % w.n2
			if filtered && !w.bitsL[i1] && !w.bitsR[i2] {
				verdicts[k] = specNone
				return
			}
			verdicts[k] = w.specEval(m, i1, i2, &sp.fills[wk])
		})
		sp.evals += values.MergeFills(sp.fills)
		for i1 := r0; i1 < r1; i1++ {
			row := (i1 - r0) * w.n2
			if filtered && !w.bitsL[i1] {
				for i2 := 0; i2 < w.n2; i2++ {
					if !w.bitsR[i2] && !w.bitsL[i1] {
						continue
					}
					if w.commitPair(m, i1, i2, verdicts[row+i2], epoch) {
						fired = true
					}
				}
				continue
			}
			for i2 := 0; i2 < w.n2; i2++ {
				if w.commitPair(m, i1, i2, verdicts[row+i2], epoch) {
					fired = true
				}
			}
		}
	}
	return fired
}
