package semantics

import (
	"fmt"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/semantics/seedref"
)

// forceSpeculation shrinks the speculation thresholds so the parallel
// layer engages (with many chunks and therefore many commit barriers
// and invalidation windows) even on the small property-test datasets,
// restoring the defaults when the test ends.
func forceSpeculation(t *testing.T, chunk, minPairs int) {
	t.Helper()
	oldChunk, oldMin := specChunk, specMinPairs
	specChunk, specMinPairs = chunk, minPairs
	t.Cleanup(func() { specChunk, specMinPairs = oldChunk, oldMin })
}

// checkParallelEquivalence asserts that EnforceWorkers at every worker
// count produces a firing sequence bit-identical to the seed reference:
// same stable instance, Applications, Passes, and the same
// deterministic chase counters (PairsExamined, RuleFirings) as the
// serial worklist.
func checkParallelEquivalence(t *testing.T, label string, d *record.PairInstance, sigma []core.MD) {
	t.Helper()
	ref, err := seedref.Enforce(d, sigma)
	if err != nil {
		t.Fatalf("%s: seed: %v", label, err)
	}
	serial, err := EnforceWorkers(d, sigma, 1)
	if err != nil {
		t.Fatalf("%s: serial: %v", label, err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := EnforceWorkers(d, sigma, workers)
		if err != nil {
			t.Fatalf("%s: workers=%d: %v", label, workers, err)
		}
		wl := fmt.Sprintf("%s/workers=%d", label, workers)
		if got.Applications != ref.Applications {
			t.Errorf("%s: Applications = %d, seed = %d", wl, got.Applications, ref.Applications)
		}
		if got.Passes != ref.Passes {
			t.Errorf("%s: Passes = %d, seed = %d", wl, got.Passes, ref.Passes)
		}
		sameInstances(t, wl, got.Instance, ref.Instance)
		if got.Stats.PairsExamined != serial.Stats.PairsExamined {
			t.Errorf("%s: PairsExamined = %d, serial = %d", wl, got.Stats.PairsExamined, serial.Stats.PairsExamined)
		}
		if got.Stats.RuleFirings != serial.Stats.RuleFirings {
			t.Errorf("%s: RuleFirings = %d, serial = %d", wl, got.Stats.RuleFirings, serial.Stats.RuleFirings)
		}
		// LHSEvaluations may differ slightly across worker counts
		// (invalidated speculations), but never below the serial count's
		// distinct-pair floor and never wildly above it.
		if got.Stats.LHSEvaluations < serial.Stats.LHSEvaluations {
			t.Errorf("%s: LHSEvaluations = %d, below serial %d", wl, got.Stats.LHSEvaluations, serial.Stats.LHSEvaluations)
		}
	}
}

// TestParallelChaseEquivalenceGen is the parallel-chase property test:
// across generated datasets and workers ∈ {1, 2, 4, 8}, the speculative
// chase must reproduce the frozen seed chase exactly. Runs under -race
// in CI at GOMAXPROCS 1 and 4, so the speculate/commit protocol is
// exercised with and without real parallelism. The tiny chunk size
// forces many speculation barriers and commit-time invalidations.
func TestParallelChaseEquivalenceGen(t *testing.T) {
	forceSpeculation(t, 64, 1)
	for _, k := range []int{25, 60} {
		for _, seed := range []int64{1, 2, 3} {
			cfg := gen.DefaultConfig(k)
			cfg.Seed = seed
			ds, err := gen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkParallelEquivalence(t, fmt.Sprintf("gen(K=%d,seed=%d)", k, seed),
				ds.Pair(), gen.HolderMDs(ds.Ctx))
		}
	}
}

// TestParallelChaseEquivalencePaper pins the parallel chase on the
// paper's worked instances, including the self-match shape where both
// sides alias one physical instance.
func TestParallelChaseEquivalencePaper(t *testing.T) {
	forceSpeculation(t, 4, 1)
	_, sigmaC, _, dc := figure1(t)
	checkParallelEquivalence(t, "figure1/Σc", dc, sigmaC)
	_, sigma0, d0 := figure3(t)
	checkParallelEquivalence(t, "figure3/Σ0", d0, sigma0)
}

// TestParallelChaseDefaultThresholds runs one gen dataset through the
// DEFAULT thresholds (speculation disabled on small frontiers) to pin
// that the gating itself cannot change results.
func TestParallelChaseDefaultThresholds(t *testing.T) {
	cfg := gen.DefaultConfig(40)
	cfg.Seed = 7
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkParallelEquivalence(t, "gen(K=40,seed=7,default-thresholds)",
		ds.Pair(), gen.HolderMDs(ds.Ctx))
}
