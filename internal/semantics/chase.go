package semantics

import (
	"mdmatch/internal/record"
)

// chase tracks value-cell classes over a pair instance: a union-find
// over every (tuple, attribute) cell, with the resolved class value
// (ResolveValue policy) written back into the tuples incrementally.
//
// The seed implementation rewrote every cell of the instance after each
// firing (flush over all cells). This version maintains the same
// invariant — each cell stores its class's resolved value — by updating
// only the members of classes whose resolved value changed during a
// union, and reports each changed tuple through onTouch. Because
// ResolveValue is a max under the (length, lexicographic) order, a
// class value only ever grows, so the incremental write-back produces
// bit-identical instances to flush-per-firing.
type chase struct {
	d       *record.PairInstance
	insts   []*record.Instance
	base    []int // first cell id of each instance
	arity   []int
	leftI   int // index of d.Left in insts
	rightI  int // index of d.Right in insts (== leftI for self-match)
	parent  []int
	value   []string // per root: resolved class value
	members [][]int  // per root: member cells
	// onTouch, when set, is called once per cell write with the owning
	// instance, tuple index, column and the new value (the worklist uses
	// it to re-enqueue candidate pairs and refresh interned value ids).
	onTouch func(in *record.Instance, tupleIdx, attrIdx int, v string)
}

func newChase(d *record.PairInstance) *chase {
	ch := &chase{d: d}
	add := func(in *record.Instance) int {
		for i, have := range ch.insts {
			if have == in {
				return i
			}
		}
		ch.insts = append(ch.insts, in)
		ch.base = append(ch.base, len(ch.parent))
		ch.arity = append(ch.arity, in.Rel.Arity())
		for _, t := range in.Tuples {
			for _, v := range t.Values {
				id := len(ch.parent)
				ch.parent = append(ch.parent, id)
				ch.value = append(ch.value, v)
				ch.members = append(ch.members, []int{id})
			}
		}
		return len(ch.insts) - 1
	}
	ch.leftI = add(d.Left)
	ch.rightI = add(d.Right)
	return ch
}

func (ch *chase) cellCount() int { return len(ch.parent) }

// cell returns the cell id of instance instIdx, tuple tupleIdx, column
// attrIdx.
func (ch *chase) cell(instIdx, tupleIdx, attrIdx int) int {
	return ch.base[instIdx] + tupleIdx*ch.arity[instIdx] + attrIdx
}

func (ch *chase) find(x int) int {
	for ch.parent[x] != x {
		ch.parent[x] = ch.parent[ch.parent[x]]
		x = ch.parent[x]
	}
	return x
}

func (ch *chase) union(a, b int) {
	ra, rb := ch.find(a), ch.find(b)
	if ra == rb {
		return
	}
	// Attach the smaller class under the larger.
	if len(ch.members[ra]) < len(ch.members[rb]) {
		ra, rb = rb, ra
	}
	v := ResolveValue(ch.value[ra], ch.value[rb])
	ch.parent[rb] = ra
	if v != ch.value[ra] {
		ch.writeBack(ch.members[ra], v)
	}
	if v != ch.value[rb] {
		ch.writeBack(ch.members[rb], v)
	}
	ch.value[ra] = v
	ch.members[ra] = append(ch.members[ra], ch.members[rb]...)
	ch.members[rb] = nil
}

// writeBack stores the new class value into every member cell's tuple
// and reports the touched tuples.
func (ch *chase) writeBack(cells []int, v string) {
	for _, c := range cells {
		ii := len(ch.insts) - 1
		for ii > 0 && c < ch.base[ii] {
			ii--
		}
		off := c - ch.base[ii]
		ti, ai := off/ch.arity[ii], off%ch.arity[ii]
		t := ch.insts[ii].Tuples[ti]
		if t.Values[ai] != v {
			t.Values[ai] = v
			if ch.onTouch != nil {
				ch.onTouch(ch.insts[ii], ti, ai, v)
			}
		}
	}
}

// fire applies a rule to the pair (i1-th left tuple, i2-th right tuple):
// every RHS cell pair is identified and the resolved values are written
// back immediately.
func (ch *chase) fire(cm *compiledMD, i1, i2 int) {
	for _, p := range cm.rhs {
		ch.union(ch.cell(ch.leftI, i1, p[0]), ch.cell(ch.rightI, i2, p[1]))
	}
}
