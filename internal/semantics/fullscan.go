package semantics

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
)

// EnforceFullScan is the reference enforcement chase: the paper-literal
// loop of Section 3.1 that rescans the full |I1|×|I2| pair space for
// every rule on every pass until a pass fires nothing. It produces the
// same stable instance, Applications and Passes as Enforce (the
// candidate-driven worklist) — the property tests assert this on
// generated datasets — but does quadratic work per pass. It exists as
// the validation baseline and as the old-vs-new comparison of
// `make bench-exec`; use Enforce everywhere else.
func EnforceFullScan(d *record.PairInstance, sigma []core.MD) (EnforceResult, error) {
	out := d.Clone()
	mds, err := compileSigma(out.Ctx, sigma)
	if err != nil {
		return EnforceResult{}, err
	}
	ch := newChase(out)
	res := EnforceResult{Instance: out}
	left, right := out.Left.Tuples, out.Right.Tuples
	maxPasses := ch.cellCount() + 2
	for {
		res.Passes++
		if res.Passes > maxPasses {
			return EnforceResult{}, fmt.Errorf("semantics: chase exceeded %d passes (non-terminating value resolution?)", maxPasses)
		}
		fired := false
		for mi := range mds {
			cm := &mds[mi]
			for i1 := range left {
				for i2 := range right {
					res.Stats.PairsExamined++
					if !cm.matchLHS(left[i1].Values, right[i2].Values, &res.Stats) {
						continue
					}
					if cm.rhsEqual(left[i1].Values, right[i2].Values) {
						continue
					}
					ch.fire(cm, i1, i2)
					fired = true
					res.Applications++
					res.Stats.RuleFirings++
				}
			}
		}
		if !fired {
			break
		}
	}
	return res, nil
}
