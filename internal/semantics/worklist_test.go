package semantics

import (
	"fmt"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/semantics/seedref"
	"mdmatch/internal/similarity"
)

// The equivalence property tests validate the worklist chase against
// seedref.Enforce — the frozen, verbatim copy of the pre-kernel seed
// implementation (interpreted evaluation, full rescans, flush per
// firing) — and against EnforceFullScan, the compiled quadratic
// reference.

// sameInstances asserts two pair instances agree tuple-by-tuple.
func sameInstances(t *testing.T, label string, a, b *record.PairInstance) {
	t.Helper()
	cmp := func(side string, x, y *record.Instance) {
		t.Helper()
		if x.Len() != y.Len() {
			t.Fatalf("%s: %s sizes differ: %d vs %d", label, side, x.Len(), y.Len())
		}
		for i, tx := range x.Tuples {
			ty := y.Tuples[i]
			if tx.ID != ty.ID {
				t.Fatalf("%s: %s tuple %d ids differ: %d vs %d", label, side, i, tx.ID, ty.ID)
			}
			for j := range tx.Values {
				if tx.Values[j] != ty.Values[j] {
					t.Errorf("%s: %s t%d[%d] = %q vs %q", label, side, tx.ID, j, tx.Values[j], ty.Values[j])
				}
			}
		}
	}
	cmp("left", a.Left, b.Left)
	cmp("right", a.Right, b.Right)
}

// checkEquivalence runs the seed reference, the compiled full scan and
// the worklist on d and asserts identical stable instances,
// Applications and Passes.
func checkEquivalence(t *testing.T, label string, d *record.PairInstance, sigma []core.MD) {
	t.Helper()
	ref, err := seedref.Enforce(d, sigma)
	if err != nil {
		t.Fatalf("%s: seed: %v", label, err)
	}
	full, err := EnforceFullScan(d, sigma)
	if err != nil {
		t.Fatalf("%s: fullscan: %v", label, err)
	}
	wl, err := Enforce(d, sigma)
	if err != nil {
		t.Fatalf("%s: worklist: %v", label, err)
	}
	for _, got := range []struct {
		name string
		res  EnforceResult
	}{{"fullscan", full}, {"worklist", wl}} {
		if got.res.Applications != ref.Applications {
			t.Errorf("%s: %s Applications = %d, seed = %d", label, got.name, got.res.Applications, ref.Applications)
		}
		if got.res.Passes != ref.Passes {
			t.Errorf("%s: %s Passes = %d, seed = %d", label, got.name, got.res.Passes, ref.Passes)
		}
		sameInstances(t, label+"/"+got.name, got.res.Instance, ref.Instance)
	}
	if wl.Stats.RuleFirings != int64(wl.Applications) {
		t.Errorf("%s: RuleFirings = %d, Applications = %d", label, wl.Stats.RuleFirings, wl.Applications)
	}
	if wl.Stats.PairsExamined > full.Stats.PairsExamined {
		t.Errorf("%s: worklist examined %d pairs, more than full scan's %d",
			label, wl.Stats.PairsExamined, full.Stats.PairsExamined)
	}
	if wl.Stats.LHSEvaluations > full.Stats.LHSEvaluations {
		t.Errorf("%s: worklist evaluated %d operators, more than full scan's %d",
			label, wl.Stats.LHSEvaluations, full.Stats.LHSEvaluations)
	}
	// The result must actually be stable.
	stable, err := IsStable(wl.Instance, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Errorf("%s: worklist result is not stable", label)
	}
}

// TestWorklistEquivalenceGen is the property test of the worklist chase:
// across generated credit/billing datasets (the paper's Section 6.2
// dirtying protocol), the worklist must reproduce the seed full-scan
// chase exactly — same stable instance, same Applications, same Passes.
func TestWorklistEquivalenceGen(t *testing.T) {
	for _, k := range []int{25, 60} {
		for _, seed := range []int64{1, 2, 3} {
			cfg := gen.DefaultConfig(k)
			cfg.Seed = seed
			ds, err := gen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalence(t, fmt.Sprintf("gen(K=%d,seed=%d)", k, seed), ds.Pair(), gen.HolderMDs(ds.Ctx))
		}
	}
}

// TestWorklistEquivalencePaper runs the equivalence check on the paper's
// instances: the Figure 1 / Example 3.5 credit-billing instance with Σc,
// and the Figure 3 / Example 3.1 self-match instance with Σ0.
func TestWorklistEquivalencePaper(t *testing.T) {
	_, sigmaC, _, dc := figure1(t)
	checkEquivalence(t, "figure1/Σc", dc, sigmaC)
	// Enforcing single rules exercises the blockable path in isolation.
	for i := range sigmaC {
		checkEquivalence(t, fmt.Sprintf("figure1/ϕ%d", i+1), dc, sigmaC[i:i+1])
	}
	_, sigma0, d0 := figure3(t)
	checkEquivalence(t, "figure3/Σ0", d0, sigma0)
}

// TestWorklistSelfMatchTouch exercises the self-match path where one
// firing touches a tuple on both sides of the pair at once.
func TestWorklistSelfMatchTouch(t *testing.T) {
	r := schema.MustStrings("R", "A", "B", "C")
	ctx := schema.MustPair(r, r)
	sigma := []core.MD{
		core.MustMD(ctx, []core.Conjunct{core.Eq("A", "A")}, []core.AttrPair{core.P("B", "B")}),
		core.MustMD(ctx, []core.Conjunct{core.Eq("B", "B")}, []core.AttrPair{core.P("C", "C")}),
		core.MustMD(ctx, []core.Conjunct{core.Eq("C", "C")}, []core.AttrPair{core.P("A", "A")}),
	}
	in := record.NewInstance(r)
	in.MustAppend("a", "b1", "c1")
	in.MustAppend("a", "b2", "c2")
	in.MustAppend("x", "b2", "c3")
	in.MustAppend("y", "b4", "c3")
	d, err := record.NewPairInstance(ctx, in, in)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "selfmatch", d, sigma)
}

// TestWorklistCountersReported checks the chase counters that
// cmd/mdreason and the examples report: a chase that fires must examine
// pairs and evaluate operators.
func TestWorklistCountersReported(t *testing.T) {
	_, sigma, _, d := figure1(t)
	res, err := Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applications == 0 {
		t.Fatal("expected firings on the Figure 1 instance")
	}
	s := res.Stats
	if s.PairsExamined == 0 || s.LHSEvaluations == 0 {
		t.Errorf("counters not wired: %+v", s)
	}
	if s.RuleFirings != int64(res.Applications) {
		t.Errorf("RuleFirings = %d, want %d", s.RuleFirings, res.Applications)
	}
}

// TestWorklistMidRowLeftTouch is the regression test for a scan-order
// bug in the dense filtered scan: a firing that touches the *current*
// left row mid-row must widen the row filter for the remaining cells
// of that very row (the reference loop's per-cell check sees it), not
// only for later rows. With the row filter hoisted to row level, this
// instance needed an extra pass: the (L0, R1) visit after the (L0, R0)
// firing was deferred although the seed chase performs it in-pass.
func TestWorklistMidRowLeftTouch(t *testing.T) {
	left := schema.MustStrings("l", "a", "b")
	right := schema.MustStrings("r", "a", "b")
	ctx := schema.MustPair(left, right)
	md := core.MustMD(ctx,
		[]core.Conjunct{core.C("a", similarity.DL(0.8), "a")},
		[]core.AttrPair{core.P("b", "b")})
	li := record.NewInstance(left)
	li.MustAppend("aaaaa", "bbbbb")
	li.MustAppend("aaabb", "zzzzz")
	ri := record.NewInstance(right)
	ri.MustAppend("aaaab", "bbbbb")
	ri.MustAppend("aaaac", "bbbbb")
	d, err := record.NewPairInstance(ctx, li, ri)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "mid-row-left-touch", d, []core.MD{md})
}
