// Package semantics gives matching dependencies their dynamic semantics
// (Section 2.1) and implements enforcement: the chase that turns an
// instance D into a stable instance D′ by repeatedly applying MDs as
// matching rules (Section 3.1).
//
// The package is the operational counterpart of the schema-level
// reasoning in internal/core: the property tests validate that whatever
// core.Deduce proves at compile time actually holds on instances.
package semantics

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
)

// MatchLHS reports whether the tuple pair (t1, t2) ∈ D matches the LHS of
// md in D: t1[X1[j]] ≈j t2[X2[j]] for every conjunct j.
func MatchLHS(d *record.PairInstance, md core.MD, t1, t2 *record.Tuple) (bool, error) {
	for _, c := range md.LHS {
		v1, err := d.Left.Get(t1, c.Pair.Left)
		if err != nil {
			return false, err
		}
		v2, err := d.Right.Get(t2, c.Pair.Right)
		if err != nil {
			return false, err
		}
		if !c.Op.Similar(v1, v2) {
			return false, nil
		}
	}
	return true, nil
}

// rhsEqual reports whether t1[Z1] = t2[Z2] for every RHS pair of md.
func rhsEqual(d *record.PairInstance, md core.MD, t1, t2 *record.Tuple) (bool, error) {
	for _, p := range md.RHS {
		v1, err := d.Left.Get(t1, p.Left)
		if err != nil {
			return false, err
		}
		v2, err := d.Right.Get(t2, p.Right)
		if err != nil {
			return false, err
		}
		if v1 != v2 {
			return false, nil
		}
	}
	return true, nil
}

// Satisfies decides (D, D′) ⊨ md: for every pair (t1, t2) ∈ D that
// matches LHS(md) in D, (a) the RHS attributes are identified in D′, and
// (b) the pair still matches LHS(md) in D′. D′ must extend D (same tuple
// ids present).
func Satisfies(d, dPrime *record.PairInstance, md core.MD) (bool, error) {
	if err := md.Validate(); err != nil {
		return false, err
	}
	if !dPrime.Extends(d) {
		return false, fmt.Errorf("semantics: D′ does not extend D")
	}
	for _, t1 := range d.Left.Tuples {
		for _, t2 := range d.Right.Tuples {
			ok, err := MatchLHS(d, md, t1, t2)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			t1p, _ := dPrime.Left.ByID(t1.ID)
			t2p, _ := dPrime.Right.ByID(t2.ID)
			eq, err := rhsEqual(dPrime, md, t1p, t2p)
			if err != nil {
				return false, err
			}
			if !eq {
				return false, nil
			}
			still, err := MatchLHS(dPrime, md, t1p, t2p)
			if err != nil {
				return false, err
			}
			if !still {
				return false, nil
			}
		}
	}
	return true, nil
}

// SatisfiesPersistent decides the persistent-match reading of
// (D, D′) ⊨ md: for every pair (t1, t2) that matches LHS(md) both in D
// and still in D′, the RHS attributes must be identified in D′.
//
// This is the reading under which the closure algorithm of Section 4 is
// sound. Under the literal reading of Section 2.1 (clause (b) as an
// obligation rather than a condition), even the paper's own Example 3.5
// deductions admit instance-level counterexamples: a rule of Σ can
// overwrite an LHS attribute of the deduced MD on some pair, breaking
// clause (b) for that pair while every rule of Σ remains satisfied. See
// TestLiteralReadingCounterexample and DESIGN.md §2.3.
func SatisfiesPersistent(d, dPrime *record.PairInstance, md core.MD) (bool, error) {
	if err := md.Validate(); err != nil {
		return false, err
	}
	if !dPrime.Extends(d) {
		return false, fmt.Errorf("semantics: D′ does not extend D")
	}
	for _, t1 := range d.Left.Tuples {
		for _, t2 := range d.Right.Tuples {
			ok, err := MatchLHS(d, md, t1, t2)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			t1p, _ := dPrime.Left.ByID(t1.ID)
			t2p, _ := dPrime.Right.ByID(t2.ID)
			still, err := MatchLHS(dPrime, md, t1p, t2p)
			if err != nil {
				return false, err
			}
			if !still {
				continue // match did not persist: no obligation
			}
			eq, err := rhsEqual(dPrime, md, t1p, t2p)
			if err != nil {
				return false, err
			}
			if !eq {
				return false, nil
			}
		}
	}
	return true, nil
}

// SatisfiesAll decides (D, D′) ⊨ Σ.
func SatisfiesAll(d, dPrime *record.PairInstance, sigma []core.MD) (bool, error) {
	for _, md := range sigma {
		ok, err := Satisfies(d, dPrime, md)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// IsStable decides whether D is stable for Σ: (D, D) ⊨ Σ (Section 3.1).
// Equivalently: whenever a pair matches the LHS of a rule, the rule's RHS
// attributes are already equal.
func IsStable(d *record.PairInstance, sigma []core.MD) (bool, error) {
	ok, _, err := stableCheck(d, sigma)
	return ok, err
}

// Violation describes one unenforced rule application, for diagnostics.
type Violation struct {
	MD      core.MD
	LeftID  int
	RightID int
}

func (v Violation) String() string {
	return fmt.Sprintf("(t%d, t%d) matches LHS of %s but RHS differs", v.LeftID, v.RightID, v.MD)
}

// Violations lists all unenforced rule applications in D (empty iff D is
// stable for Σ).
func Violations(d *record.PairInstance, sigma []core.MD) ([]Violation, error) {
	_, vs, err := stableCheck(d, sigma)
	return vs, err
}

func stableCheck(d *record.PairInstance, sigma []core.MD) (bool, []Violation, error) {
	var out []Violation
	for _, md := range sigma {
		if err := md.Validate(); err != nil {
			return false, nil, err
		}
		for _, t1 := range d.Left.Tuples {
			for _, t2 := range d.Right.Tuples {
				ok, err := MatchLHS(d, md, t1, t2)
				if err != nil {
					return false, nil, err
				}
				if !ok {
					continue
				}
				eq, err := rhsEqual(d, md, t1, t2)
				if err != nil {
					return false, nil, err
				}
				if !eq {
					out = append(out, Violation{MD: md, LeftID: t1.ID, RightID: t2.ID})
				}
			}
		}
	}
	return len(out) == 0, out, nil
}

// ResolveValue is the deterministic value-resolution policy of the
// enforcement chase: when cells are identified, the class takes the
// longest value, breaking ties lexicographically (largest). The ⇌
// operator only requires the values to become identical (Example 2.2);
// preferring longer values keeps the more informative representation, as
// in Figure 2 where "NJ" and "NJ07974" resolve to "NJ07974".
func ResolveValue(a, b string) string {
	if len(a) > len(b) {
		return a
	}
	if len(b) > len(a) {
		return b
	}
	if a >= b {
		return a
	}
	return b
}

// EnforceResult reports what the chase did.
type EnforceResult struct {
	// Instance is the stable instance D′ ⊒ D.
	Instance *record.PairInstance
	// Applications is the number of rule firings (pair × rule with an
	// actual update).
	Applications int
	// Passes is the number of full scan passes, including the final
	// fixpoint-confirming pass.
	Passes int
}

// Enforce runs the chase: it repeatedly applies the MDs of Σ as matching
// rules to a copy of D, identifying RHS cells via union-find with the
// ResolveValue policy, until the instance is stable for Σ. D itself is
// not modified ("in the matching process instance D may not be updated",
// Section 2.1).
//
// Termination: every firing merges at least one pair of distinct cell
// classes, and there are finitely many cells, so the number of firings
// is bounded by the total cell count; the pass loop is additionally
// guarded.
func Enforce(d *record.PairInstance, sigma []core.MD) (EnforceResult, error) {
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			return EnforceResult{}, fmt.Errorf("semantics: Σ[%d]: %w", i, err)
		}
	}
	out := d.Clone()
	ch := newChase(out)

	res := EnforceResult{Instance: out}
	maxPasses := ch.cellCount() + 2
	for {
		res.Passes++
		if res.Passes > maxPasses {
			return EnforceResult{}, fmt.Errorf("semantics: chase exceeded %d passes (non-terminating value resolution?)", maxPasses)
		}
		fired := false
		for _, md := range sigma {
			for i1, t1 := range out.Left.Tuples {
				for i2, t2 := range out.Right.Tuples {
					ok, err := MatchLHS(out, md, t1, t2)
					if err != nil {
						return EnforceResult{}, err
					}
					if !ok {
						continue
					}
					eq, err := rhsEqual(out, md, t1, t2)
					if err != nil {
						return EnforceResult{}, err
					}
					if eq {
						continue
					}
					// Fire: identify every RHS cell pair.
					for _, p := range md.RHS {
						ch.unionAttrs(i1, i2, p)
					}
					ch.flush()
					fired = true
					res.Applications++
				}
			}
		}
		if !fired {
			break
		}
	}
	return res, nil
}

// chase tracks value-cell classes over a pair instance.
type chase struct {
	d       *record.PairInstance
	insts   []*record.Instance
	base    map[*record.Instance]int
	parent  []int
	value   []string // per root: resolved class value
	members [][]int  // per root: member cells
}

func newChase(d *record.PairInstance) *chase {
	ch := &chase{d: d, base: make(map[*record.Instance]int)}
	add := func(in *record.Instance) {
		if _, ok := ch.base[in]; ok {
			return
		}
		ch.base[in] = len(ch.parent)
		ch.insts = append(ch.insts, in)
		for _, t := range in.Tuples {
			for _, v := range t.Values {
				id := len(ch.parent)
				ch.parent = append(ch.parent, id)
				ch.value = append(ch.value, v)
				ch.members = append(ch.members, []int{id})
			}
		}
	}
	add(d.Left)
	add(d.Right)
	return ch
}

func (ch *chase) cellCount() int { return len(ch.parent) }

func (ch *chase) cell(in *record.Instance, tupleIdx, attrIdx int) int {
	return ch.base[in] + tupleIdx*in.Rel.Arity() + attrIdx
}

func (ch *chase) find(x int) int {
	for ch.parent[x] != x {
		ch.parent[x] = ch.parent[ch.parent[x]]
		x = ch.parent[x]
	}
	return x
}

func (ch *chase) union(a, b int) {
	ra, rb := ch.find(a), ch.find(b)
	if ra == rb {
		return
	}
	// Attach the smaller class under the larger.
	if len(ch.members[ra]) < len(ch.members[rb]) {
		ra, rb = rb, ra
	}
	ch.parent[rb] = ra
	ch.value[ra] = ResolveValue(ch.value[ra], ch.value[rb])
	ch.members[ra] = append(ch.members[ra], ch.members[rb]...)
	ch.members[rb] = nil
}

// unionAttrs identifies the cells t1[p.Left] and t2[p.Right], where t1 is
// the i1-th left tuple and t2 the i2-th right tuple.
func (ch *chase) unionAttrs(i1, i2 int, p core.AttrPair) {
	li, _ := ch.d.Left.Rel.Index(p.Left)
	ri, _ := ch.d.Right.Rel.Index(p.Right)
	ch.union(ch.cell(ch.d.Left, i1, li), ch.cell(ch.d.Right, i2, ri))
}

// flush writes every class's resolved value back into the tuples.
func (ch *chase) flush() {
	for _, in := range ch.insts {
		b := ch.base[in]
		ar := in.Rel.Arity()
		for ti, t := range in.Tuples {
			for ai := range t.Values {
				t.Values[ai] = ch.value[ch.find(b+ti*ar+ai)]
			}
		}
	}
}

// StableFor builds a stable instance for Σ from D by enforcement and
// additionally reports whether the chase's outcome satisfies the pair
// semantics (D, D′) ⊨ Σ. The second value can be false when enforcing
// one rule breaks the LHS match of another (the chase still guarantees
// stability of D′ itself, clause (a)+(b) on D′).
func StableFor(d *record.PairInstance, sigma []core.MD) (*record.PairInstance, bool, error) {
	res, err := Enforce(d, sigma)
	if err != nil {
		return nil, false, err
	}
	ok, err := SatisfiesAll(d, res.Instance, sigma)
	if err != nil {
		return nil, false, err
	}
	return res.Instance, ok, nil
}

// MatchByKey reports whether (t1, t2) match the LHS of the relative key
// ψ: the operational use of RCKs as matching rules ("to identify t1[Y1]
// and t2[Y2] it suffices to inspect whether the attributes of t1[X1] and
// t2[X2] pairwise match w.r.t. C", Section 2.2).
func MatchByKey(d *record.PairInstance, key core.Key, t1, t2 *record.Tuple) (bool, error) {
	return MatchLHS(d, key.AsMD(), t1, t2)
}
