// Package semantics gives matching dependencies their dynamic semantics
// (Section 2.1) and implements enforcement: the chase that turns an
// instance D into a stable instance D′ by repeatedly applying MDs as
// matching rules (Section 3.1).
//
// The package is the operational counterpart of the schema-level
// reasoning in internal/core: the property tests validate that whatever
// core.Deduce proves at compile time actually holds on instances.
//
// All instance-level loops execute through the compiled evaluation
// kernel (internal/exec): each MD is compiled once per call — attribute
// references resolved to positional columns, hash-encodable conjuncts
// identified — and tuple pairs are evaluated on positional value slices.
// Enforce is a candidate-driven worklist chase (see worklist.go);
// EnforceFullScan keeps the paper-literal quadratic loop as the
// validation and benchmarking reference.
package semantics

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
)

// MatchLHS reports whether the tuple pair (t1, t2) ∈ D matches the LHS of
// md in D: t1[X1[j]] ≈j t2[X2[j]] for every conjunct j. It is the
// single-pair, spec-level check; the enforcement and satisfaction loops
// use the compiled form instead.
func MatchLHS(d *record.PairInstance, md core.MD, t1, t2 *record.Tuple) (bool, error) {
	for _, c := range md.LHS {
		v1, err := d.Left.Get(t1, c.Pair.Left)
		if err != nil {
			return false, err
		}
		v2, err := d.Right.Get(t2, c.Pair.Right)
		if err != nil {
			return false, err
		}
		if !c.Op.Similar(v1, v2) {
			return false, nil
		}
	}
	return true, nil
}

// Satisfies decides (D, D′) ⊨ md: for every pair (t1, t2) ∈ D that
// matches LHS(md) in D, (a) the RHS attributes are identified in D′, and
// (b) the pair still matches LHS(md) in D′. D′ must extend D (same tuple
// ids present).
func Satisfies(d, dPrime *record.PairInstance, md core.MD) (bool, error) {
	if err := md.Validate(); err != nil {
		return false, err
	}
	if !dPrime.Extends(d) {
		return false, fmt.Errorf("semantics: D′ does not extend D")
	}
	cm, err := compileMD(d.Ctx, md)
	if err != nil {
		return false, err
	}
	cmP, err := compileMD(dPrime.Ctx, md)
	if err != nil {
		return false, err
	}
	for _, t1 := range d.Left.Tuples {
		for _, t2 := range d.Right.Tuples {
			if !cm.matchLHS(t1.Values, t2.Values, nil) {
				continue
			}
			t1p, _ := dPrime.Left.ByID(t1.ID)
			t2p, _ := dPrime.Right.ByID(t2.ID)
			if !cmP.rhsEqual(t1p.Values, t2p.Values) {
				return false, nil
			}
			if !cmP.matchLHS(t1p.Values, t2p.Values, nil) {
				return false, nil
			}
		}
	}
	return true, nil
}

// SatisfiesPersistent decides the persistent-match reading of
// (D, D′) ⊨ md: for every pair (t1, t2) that matches LHS(md) both in D
// and still in D′, the RHS attributes must be identified in D′.
//
// This is the reading under which the closure algorithm of Section 4 is
// sound. Under the literal reading of Section 2.1 (clause (b) as an
// obligation rather than a condition), even the paper's own Example 3.5
// deductions admit instance-level counterexamples: a rule of Σ can
// overwrite an LHS attribute of the deduced MD on some pair, breaking
// clause (b) for that pair while every rule of Σ remains satisfied. See
// TestLiteralReadingCounterexample and DESIGN.md §2.3.
func SatisfiesPersistent(d, dPrime *record.PairInstance, md core.MD) (bool, error) {
	if err := md.Validate(); err != nil {
		return false, err
	}
	if !dPrime.Extends(d) {
		return false, fmt.Errorf("semantics: D′ does not extend D")
	}
	cm, err := compileMD(d.Ctx, md)
	if err != nil {
		return false, err
	}
	cmP, err := compileMD(dPrime.Ctx, md)
	if err != nil {
		return false, err
	}
	for _, t1 := range d.Left.Tuples {
		for _, t2 := range d.Right.Tuples {
			if !cm.matchLHS(t1.Values, t2.Values, nil) {
				continue
			}
			t1p, _ := dPrime.Left.ByID(t1.ID)
			t2p, _ := dPrime.Right.ByID(t2.ID)
			if !cmP.matchLHS(t1p.Values, t2p.Values, nil) {
				continue // match did not persist: no obligation
			}
			if !cmP.rhsEqual(t1p.Values, t2p.Values) {
				return false, nil
			}
		}
	}
	return true, nil
}

// SatisfiesAll decides (D, D′) ⊨ Σ.
func SatisfiesAll(d, dPrime *record.PairInstance, sigma []core.MD) (bool, error) {
	for _, md := range sigma {
		ok, err := Satisfies(d, dPrime, md)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// IsStable decides whether D is stable for Σ: (D, D) ⊨ Σ (Section 3.1).
// Equivalently: whenever a pair matches the LHS of a rule, the rule's RHS
// attributes are already equal.
func IsStable(d *record.PairInstance, sigma []core.MD) (bool, error) {
	ok, _, err := stableCheck(d, sigma)
	return ok, err
}

// Violation describes one unenforced rule application, for diagnostics.
type Violation struct {
	MD      core.MD
	LeftID  int
	RightID int
}

func (v Violation) String() string {
	return fmt.Sprintf("(t%d, t%d) matches LHS of %s but RHS differs", v.LeftID, v.RightID, v.MD)
}

// Violations lists all unenforced rule applications in D (empty iff D is
// stable for Σ).
func Violations(d *record.PairInstance, sigma []core.MD) ([]Violation, error) {
	_, vs, err := stableCheck(d, sigma)
	return vs, err
}

func stableCheck(d *record.PairInstance, sigma []core.MD) (bool, []Violation, error) {
	var out []Violation
	for mi, md := range sigma {
		if err := md.Validate(); err != nil {
			return false, nil, err
		}
		cm, err := compileMD(d.Ctx, md)
		if err != nil {
			return false, nil, err
		}
		for _, t1 := range d.Left.Tuples {
			for _, t2 := range d.Right.Tuples {
				if !cm.matchLHS(t1.Values, t2.Values, nil) {
					continue
				}
				if !cm.rhsEqual(t1.Values, t2.Values) {
					out = append(out, Violation{MD: sigma[mi], LeftID: t1.ID, RightID: t2.ID})
				}
			}
		}
	}
	return len(out) == 0, out, nil
}

// ResolveValue is the deterministic value-resolution policy of the
// enforcement chase: when cells are identified, the class takes the
// longest value, breaking ties lexicographically (largest). The ⇌
// operator only requires the values to become identical (Example 2.2);
// preferring longer values keeps the more informative representation, as
// in Figure 2 where "NJ" and "NJ07974" resolve to "NJ07974".
func ResolveValue(a, b string) string {
	if len(a) > len(b) {
		return a
	}
	if len(b) > len(a) {
		return b
	}
	if a >= b {
		return a
	}
	return b
}

// EnforceResult reports what the chase did.
type EnforceResult struct {
	// Instance is the stable instance D′ ⊒ D.
	Instance *record.PairInstance
	// Applications is the number of rule firings (pair × rule with an
	// actual update).
	Applications int
	// Passes is the number of rule rounds, including the final
	// fixpoint-confirming round.
	Passes int
	// Stats counts the chase's work: candidate pairs examined, operator
	// evaluations, firings. Enforce examines far fewer pairs than the
	// quadratic reference (see EnforceFullScan); the counters make the
	// difference observable to callers (cmd/mdreason, the examples).
	Stats metrics.ChaseStats
}

// Enforce runs the chase: it repeatedly applies the MDs of Σ as matching
// rules to a copy of D, identifying RHS cells via union-find with the
// ResolveValue policy, until the instance is stable for Σ. D itself is
// not modified ("in the matching process instance D may not be updated",
// Section 2.1).
//
// Enforcement is candidate-driven: rules are compiled through the
// internal/exec kernel, pairs are seeded from blocking-style joins over
// each rule's hash-encodable conjuncts where operators allow (full cross
// product per rule otherwise, once), and after a firing only pairs
// involving touched tuples are reconsidered. The firing sequence — and
// therefore the stable instance, Applications and Passes — is identical
// to the quadratic reference loop EnforceFullScan; see worklist.go for
// the argument.
//
// Termination: every firing merges at least one pair of distinct cell
// classes, and there are finitely many cells, so the number of firings
// is bounded by the total cell count; the pass loop is additionally
// guarded.
func Enforce(d *record.PairInstance, sigma []core.MD) (EnforceResult, error) {
	return EnforceWorkers(d, sigma, 1)
}

// EnforceWorkers is Enforce with an explicit chase worker count:
// workers > 1 evaluates each scan chunk's LHS verdicts speculatively on
// worker goroutines and commits firings serially in reference order, so
// the firing sequence — and therefore the stable instance, Applications,
// Passes and the deterministic chase counters — is bit-identical to
// Enforce at any worker count (property-tested in parallel_test.go).
// workers <= 0 selects GOMAXPROCS; workers == 1 is exactly the serial
// chase.
func EnforceWorkers(d *record.PairInstance, sigma []core.MD, workers int) (EnforceResult, error) {
	out := d.Clone()
	mds, err := compileSigma(out.Ctx, sigma)
	if err != nil {
		return EnforceResult{}, err
	}
	return newWorklist(out, mds, workers).run()
}

// StableFor builds a stable instance for Σ from D by enforcement and
// additionally reports whether the chase's outcome satisfies the pair
// semantics (D, D′) ⊨ Σ. The second value can be false when enforcing
// one rule breaks the LHS match of another (the chase still guarantees
// stability of D′ itself, clause (a)+(b) on D′).
func StableFor(d *record.PairInstance, sigma []core.MD) (*record.PairInstance, bool, error) {
	res, err := Enforce(d, sigma)
	if err != nil {
		return nil, false, err
	}
	ok, err := SatisfiesAll(d, res.Instance, sigma)
	if err != nil {
		return nil, false, err
	}
	return res.Instance, ok, nil
}

// MatchByKey reports whether (t1, t2) match the LHS of the relative key
// ψ: the operational use of RCKs as matching rules ("to identify t1[Y1]
// and t2[Y2] it suffices to inspect whether the attributes of t1[X1] and
// t2[X2] pairwise match w.r.t. C", Section 2.2).
func MatchByKey(d *record.PairInstance, key core.Key, t1, t2 *record.Tuple) (bool, error) {
	return MatchLHS(d, key.AsMD(), t1, t2)
}
