package semantics

import (
	"mdmatch/internal/record"
	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// The chase-level interned value store.
//
// A similarity operator is expensive (edit distances are quadratic in
// value length), and the chase evaluates the same conjunct on the same
// value pair over and over: duplicates share values, several rules test
// the same attribute pair, and later passes revisit pairs whose tuples
// were touched on unrelated columns. The key observation making a
// complete memo possible is that ResolveValue always picks one of its
// two arguments — enforcement never invents a value — so the set of
// values a column can ever hold is fixed when the chase starts: the
// initial values of every column connected to it through Σ's RHS pairs
// (cells are only ever identified along those pairs).
//
// evalCache therefore carves the columns into components (union-find
// over Σ's RHS pairs *and* LHS conjunct pairs — the latter so that both
// columns of every conjunct share one dictionary), interns each
// component's value universe into one values.Dict, tracks the current
// value ID of every cell through the instances' interned columnar
// views, and gives each distinct non-encodable conjunct a fixed
// values.Cache: a (minID, maxID)-canonical verdict matrix at 2 bits per
// combination. A cache hit replaces a Damerau–Levenshtein evaluation
// with two array reads; equality conjuncts become integer ID
// comparisons and Soundex conjuncts comparisons of per-value interned
// code IDs, with no cache slot at all. Verdicts are pure functions of
// the two values, so memoization cannot change any chase outcome — only
// Stats.LHSEvaluations (actual operator calls) shrinks.
type evalCache struct {
	// cols[side] is the interned columnar view of the side's instance
	// (aliased for self-match, so a touched cell needs one refresh).
	cols [2]*values.Columns
	// vids[side][col] aliases cols[side].Column(col): the current value
	// ID of every cell, refreshed in place by cellChanged.
	vids [2][][]values.ID
	// conjs deduplicates verdict caches across rules.
	conjs map[conjID]*values.Cache
}

// conjID identifies a distinct conjunct across all rules of Σ.
type conjID struct {
	lcol, rcol int
	op         string
}

// newEvalCache builds the interned store for a chase over d with the
// given compiled rules.
func newEvalCache(d *record.PairInstance, mds []compiledMD) *evalCache {
	a1, a2 := d.Ctx.Left.Arity(), d.Ctx.Right.Arity()
	self := d.SelfMatch()

	// Group column nodes: left columns are 0..a1-1, right columns
	// a1..a1+a2-1 (aliased onto the left for self-match). Σ's RHS pairs
	// connect the columns whose cells enforcement can identify (the
	// fixed-universe argument needs them); LHS conjunct pairs join the
	// dictionaries so conjunct caches get one shared ID space and the
	// canonical (min, max) key applies.
	g := values.NewGrouper(a1 + a2)
	node := func(side, col int) int {
		if side == 1 && !self {
			return a1 + col
		}
		return col
	}
	for i := range mds {
		for _, p := range mds[i].rhs {
			g.Link(node(0, p[0]), node(1, p[1]))
		}
		for _, c := range mds[i].lhs {
			g.Link(node(0, c.Left), node(1, c.Right))
		}
	}

	ec := &evalCache{conjs: make(map[conjID]*values.Cache)}
	sideDicts := func(side, arity int) []*values.Dict {
		out := make([]*values.Dict, arity)
		for c := range out {
			out[c] = g.Dict(node(side, c))
		}
		return out
	}

	// Intern the initial (and therefore complete) value universes and
	// record each cell's ID through the columnar views.
	var err error
	ec.cols[0], err = d.Left.Interned(sideDicts(0, a1))
	if err != nil {
		panic(err) // arity mismatch is impossible for a validated pair
	}
	if self {
		// One physical instance: the right-side view shares the left ID
		// slices, so a touched cell needs one refresh, not two.
		ec.cols[1] = ec.cols[0]
	} else {
		ec.cols[1], err = d.Right.Interned(sideDicts(1, a2))
		if err != nil {
			panic(err)
		}
	}
	for side, cols := range ec.cols {
		ec.vids[side] = make([][]values.ID, cols.Arity())
		for c := 0; c < cols.Arity(); c++ {
			ec.vids[side][c] = cols.Column(c)
		}
	}

	// Verdict caches for the distinct non-encodable conjuncts. The
	// value universes are final here, so the caches use the fixed 2-bit
	// matrix backend; conjuncts whose universes multiply out beyond the
	// cap (nil cache) evaluate uncached.
	for i := range mds {
		for _, c := range mds[i].lhs {
			if _, encodable := seedEncoder(c.Op); encodable {
				continue
			}
			id := conjID{lcol: c.Left, rcol: c.Right, op: c.Op.Name()}
			if _, ok := ec.conjs[id]; ok {
				continue
			}
			ec.conjs[id] = values.NewFixedCache(c.Op, ec.dict(0, c.Left), ec.dict(1, c.Right), 0)
		}
	}
	return ec
}

// dict returns the dictionary of one side's column.
func (ec *evalCache) dict(side, col int) *values.Dict { return ec.cols[side].Dict(col) }

// conjKind discriminates the compiled evaluation strategies of one LHS
// conjunct over the interned store.
type conjKind uint8

const (
	kindEq     conjKind = iota // equality: integer ID comparison
	kindSdx                    // Soundex equivalence: interned code IDs
	kindCached                 // memoized through a values.Cache
	kindDirect                 // evaluate the operator on raw strings
)

// conjExec is one LHS conjunct compiled against the interned store: the
// column ID slices hoisted, the strategy resolved. lids/rids alias the
// store's per-cell ID slices, which are refreshed in place, so a
// conjExec never goes stale.
type conjExec struct {
	kind       conjKind
	lcol, rcol int
	lids, rids []values.ID
	dict       *values.Dict // kindSdx: the shared dictionary
	cache      *values.Cache
	op         similarity.Operator // kindDirect fallback
}

// compileConjuncts resolves a compiled MD's LHS against the store.
func (ec *evalCache) compileConjuncts(cm *compiledMD) []conjExec {
	out := make([]conjExec, len(cm.lhs))
	for i, c := range cm.lhs {
		ce := conjExec{
			lcol: c.Left, rcol: c.Right,
			lids: ec.vids[0][c.Left], rids: ec.vids[1][c.Right],
			op: c.Op,
		}
		switch {
		case similarity.IsEq(c.Op):
			ce.kind = kindEq
		case c.Op.Name() == "soundex":
			ce.kind = kindSdx
			ce.dict = ec.dict(0, c.Left)
		default:
			if cc := ec.conjs[conjID{lcol: c.Left, rcol: c.Right, op: c.Op.Name()}]; cc != nil {
				ce.kind = kindCached
				ce.cache = cc
			} else {
				ce.kind = kindDirect
			}
		}
		out[i] = ce
	}
	return out
}

// rhsExec is a compiled RHS pair: the hoisted ID slices of both
// columns, comparable directly because RHS-paired columns always share
// a dictionary.
type rhsExec struct {
	lids, rids []values.ID
}

func (ec *evalCache) compileRHS(cm *compiledMD) []rhsExec {
	out := make([]rhsExec, len(cm.rhs))
	for i, p := range cm.rhs {
		out[i] = rhsExec{lids: ec.vids[0][p[0]], rids: ec.vids[1][p[1]]}
	}
	return out
}

// cellChanged refreshes the interned ID of a touched cell. The chase
// only moves existing values between cells, so the value is always
// already interned (SetKnown panics otherwise rather than silently
// corrupting the fixed-size caches).
func (ec *evalCache) cellChanged(side, col, tupleIdx int, v string) {
	ec.cols[side].SetKnown(col, tupleIdx, v)
}

// operatorEvaluations sums the actual operator calls performed by the
// verdict caches (the worklist adds them to Stats.LHSEvaluations once,
// at the end of the run).
func (ec *evalCache) operatorEvaluations() int64 {
	var total int64
	for _, c := range ec.conjs {
		if c != nil {
			total += c.Evaluations()
		}
	}
	return total
}
