package semantics

import (
	"mdmatch/internal/record"
)

// The chase-level conjunct memo.
//
// A similarity operator is expensive (edit distances are quadratic in
// value length), and the chase evaluates the same conjunct on the same
// value pair over and over: duplicates share values, several rules test
// the same attribute pair, and later passes revisit pairs whose tuples
// were touched on unrelated columns. The key observation making a
// complete memo possible is that ResolveValue always picks one of its
// two arguments — enforcement never invents a value — so the set of
// values a column can ever hold is fixed when the chase starts: the
// initial values of every column connected to it through Σ's RHS pairs
// (cells are only ever identified along those pairs).
//
// evalCache therefore interns each such column-component's value
// universe once, tracks the current value id of every cell, and gives
// each distinct non-encodable conjunct a dense (left ids × right ids)
// verdict matrix at 2 bits per combination. A cache hit replaces a
// Damerau–Levenshtein evaluation with two array reads. Verdicts are
// pure functions of the two values, so memoization cannot change any
// chase outcome — only Stats.LHSEvaluations (actual operator calls)
// shrinks.

// cacheMaxCombos caps a conjunct matrix's size (2 bits per combo:
// 1<<26 combos = 16 MiB). Oversized conjuncts evaluate uncached.
const cacheMaxCombos = int64(1) << 26

// valuePool is one column-component's interned value universe.
type valuePool struct {
	ids map[string]int32
}

func (p *valuePool) intern(v string) int32 {
	id, ok := p.ids[v]
	if !ok {
		id = int32(len(p.ids))
		p.ids[v] = id
	}
	return id
}

// lookup returns the id of v, or -1 if v is outside the pool (possible
// only if an encoder invariant is broken; evaluation then skips the
// cache).
func (p *valuePool) lookup(v string) int32 {
	if id, ok := p.ids[v]; ok {
		return id
	}
	return -1
}

// conjCache is the verdict matrix of one distinct conjunct.
type conjCache struct {
	stride int64    // right pool size
	lsize  int64    // left pool size
	bits   []uint64 // 2 bits per (v1, v2): known flag, verdict
}

func newConjCache(lsize, rsize int) *conjCache {
	combos := int64(lsize) * int64(rsize)
	if combos == 0 || combos > cacheMaxCombos {
		return nil
	}
	return &conjCache{
		stride: int64(rsize),
		lsize:  int64(lsize),
		bits:   make([]uint64, (2*combos+63)/64),
	}
}

// get returns the cached verdict of (v1, v2) and whether one is known.
func (cc *conjCache) get(v1, v2 int32) (verdict, known bool) {
	if v1 < 0 || v2 < 0 || int64(v1) >= cc.lsize || int64(v2) >= cc.stride {
		return false, false
	}
	off := (int64(v1)*cc.stride + int64(v2)) * 2
	w := cc.bits[off>>6] >> uint(off&63)
	return w&2 != 0, w&1 != 0
}

func (cc *conjCache) set(v1, v2 int32, verdict bool) {
	if v1 < 0 || v2 < 0 || int64(v1) >= cc.lsize || int64(v2) >= cc.stride {
		return
	}
	off := (int64(v1)*cc.stride + int64(v2)) * 2
	m := uint64(1) << uint(off&63)
	if verdict {
		m |= m << 1
	}
	cc.bits[off>>6] |= m
}

// conjID identifies a distinct conjunct across all rules of Σ.
type conjID struct {
	lcol, rcol int
	op         string
}

// evalCache holds the pools, per-cell value ids and conjunct matrices of
// one chase.
type evalCache struct {
	// pool[side][col] is the value pool of the column's component.
	pool [2][]*valuePool
	// vids[side][col][tupleIdx] is the interned id of the cell's current
	// value.
	vids [2][][]int32
	// conjs deduplicates matrices across rules.
	conjs map[conjID]*conjCache
}

// newEvalCache builds the cache for a chase over d with the given
// compiled rules.
func newEvalCache(d *record.PairInstance, mds []compiledMD) *evalCache {
	a1, a2 := d.Ctx.Left.Arity(), d.Ctx.Right.Arity()
	self := d.SelfMatch()

	// Union-find over column nodes: left columns are 0..a1-1, right
	// columns a1..a1+a2-1 (aliased onto the left for self-match). Σ's
	// RHS pairs connect the columns whose cells enforcement can identify.
	n := a1 + a2
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	node := func(side, col int) int {
		if side == 1 && !self {
			return a1 + col
		}
		return col
	}
	for i := range mds {
		for _, p := range mds[i].rhs {
			ra, rb := find(node(0, p[0])), find(node(1, p[1]))
			if ra != rb {
				parent[ra] = rb
			}
		}
	}

	ec := &evalCache{conjs: make(map[conjID]*conjCache)}
	pools := make(map[int]*valuePool)
	poolOf := func(side, col int) *valuePool {
		r := find(node(side, col))
		p, ok := pools[r]
		if !ok {
			p = &valuePool{ids: make(map[string]int32)}
			pools[r] = p
		}
		return p
	}
	ec.pool[0] = make([]*valuePool, a1)
	for c := 0; c < a1; c++ {
		ec.pool[0][c] = poolOf(0, c)
	}
	ec.pool[1] = make([]*valuePool, a2)
	for c := 0; c < a2; c++ {
		ec.pool[1][c] = poolOf(1, c)
	}

	// Intern the initial (and therefore complete) value universes and
	// record each cell's id.
	internSide := func(side int, in *record.Instance, arity int) [][]int32 {
		vids := make([][]int32, arity)
		for c := range vids {
			vids[c] = make([]int32, in.Len())
		}
		for ti, t := range in.Tuples {
			for c, v := range t.Values {
				vids[c][ti] = ec.pool[side][c].intern(v)
			}
		}
		return vids
	}
	ec.vids[0] = internSide(0, d.Left, a1)
	if self {
		// One physical instance: the right-side view shares the left
		// id slices, so a touched cell needs one refresh, not two.
		ec.vids[1] = ec.vids[0]
	} else {
		ec.vids[1] = internSide(1, d.Right, a2)
	}

	// Matrices for the distinct non-encodable conjuncts.
	for i := range mds {
		for ci := range mds[i].lhs {
			c := mds[i].lhs[ci]
			if _, encodable := seedEncoder(c.Op); encodable {
				continue
			}
			id := conjID{lcol: c.Left, rcol: c.Right, op: c.Op.Name()}
			if _, ok := ec.conjs[id]; ok {
				continue
			}
			ec.conjs[id] = newConjCache(len(ec.pool[0][c.Left].ids), len(ec.pool[1][c.Right].ids))
		}
	}
	return ec
}

// caches returns the per-conjunct cache slice aligned with cm.lhs (nil
// entries evaluate uncached).
func (ec *evalCache) caches(cm *compiledMD) []*conjCache {
	out := make([]*conjCache, len(cm.lhs))
	for i, c := range cm.lhs {
		if _, encodable := seedEncoder(c.Op); encodable {
			continue
		}
		out[i] = ec.conjs[conjID{lcol: c.Left, rcol: c.Right, op: c.Op.Name()}]
	}
	return out
}

// cellChanged refreshes the interned id of a touched cell.
func (ec *evalCache) cellChanged(side, col, tupleIdx int, v string) {
	ec.vids[side][col][tupleIdx] = ec.pool[side][col].lookup(v)
}
