package semantics

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// figure1 builds the credit/billing schemas, Σc and the instance of
// Figure 1 (tuples t1, t2 in credit; t3..t6 in billing).
func figure1(t testing.TB) (schema.Pair, []core.MD, core.Target, *record.PairInstance) {
	t.Helper()
	credit := schema.MustStrings("credit",
		"cno", "ssn", "fn", "ln", "addr", "tel", "email", "gender", "type")
	billing := schema.MustStrings("billing",
		"cno", "fn", "ln", "post", "phn", "email", "gender", "item", "price")
	ctx := schema.MustPair(credit, billing)
	target, err := core.NewTarget(ctx,
		schema.AttrList{"fn", "ln", "addr", "tel", "gender"},
		schema.AttrList{"fn", "ln", "post", "phn", "gender"})
	if err != nil {
		t.Fatal(err)
	}
	d := similarity.DL(0.75)
	sigma := []core.MD{
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("ln", "ln"), core.Eq("addr", "post"), core.C("fn", d, "fn")},
			target.Pairs()),
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("tel", "phn")},
			[]core.AttrPair{core.P("addr", "post")}),
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("email", "email")},
			[]core.AttrPair{core.P("fn", "fn"), core.P("ln", "ln")}),
	}

	ic := record.NewInstance(credit)
	// t1, t2 (ids 1, 2 to mirror the paper's numbering)
	if _, err := ic.AppendWithID(1, []string{"111", "079172485", "Mark", "Clifford", "10 Oak Street, MH, NJ 07974", "908-1111111", "mc@gm.com", "M", "master"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ic.AppendWithID(2, []string{"222", "191843658", "David", "Smith", "620 Elm Street, MH, NJ 07976", "908-2222222", "dsmith@hm.com", "M", "visa"}); err != nil {
		t.Fatal(err)
	}
	ib := record.NewInstance(billing)
	// t3..t6
	rows := [][]string{
		{"111", "Marx", "Clifford", "10 Oak Street, MH, NJ 07974", "908", "mc", "null", "iPod", "169.99"},
		{"111", "Marx", "Clifford", "NJ", "908-1111111", "mc", "null", "book", "19.99"},
		{"111", "M.", "Clivord", "10 Oak Street, MH, NJ 07974", "1111111", "mc@gm.com", "null", "PSP", "269.99"},
		{"111", "M.", "Clivord", "NJ", "908-1111111", "mc@gm.com", "null", "CD", "14.99"},
	}
	for i, r := range rows {
		if _, err := ib.AppendWithID(3+i, r); err != nil {
			t.Fatal(err)
		}
	}
	pd, err := record.NewPairInstance(ctx, ic, ib)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, sigma, target, pd
}

// TestFigure1KeyMatching reproduces Example 1.1: the given matching key
// (rck1) matches (t1, t3) but not (t1, t4..t6); the deduced keys rck2,
// rck3, rck4 match (t1, t4), (t1, t5), (t1, t6) respectively.
func TestFigure1KeyMatching(t *testing.T) {
	ctx, _, target, d := figure1(t)
	dl := similarity.DL(0.75)
	rcks := []core.Key{
		{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{core.Eq("ln", "ln"), core.Eq("addr", "post"), core.C("fn", dl, "fn")}},
		{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{core.Eq("ln", "ln"), core.Eq("tel", "phn"), core.C("fn", dl, "fn")}},
		{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{core.Eq("email", "email"), core.Eq("addr", "post")}},
		{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{core.Eq("email", "email"), core.Eq("tel", "phn")}},
	}
	t1, _ := d.Left.ByID(1)
	match := func(k core.Key, billingID int) bool {
		t.Helper()
		tb, ok := d.Right.ByID(billingID)
		if !ok {
			t.Fatalf("missing billing tuple %d", billingID)
		}
		m, err := MatchByKey(d, k, t1, tb)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// rck1 matches t3 only ("we can now match t1 and t3").
	if !match(rcks[0], 3) {
		t.Error("rck1 must match (t1, t3)")
	}
	for _, id := range []int{4, 5, 6} {
		if match(rcks[0], id) {
			t.Errorf("rck1 must not match (t1, t%d)", id)
		}
	}
	// Deduced keys pick up the rest (Example 1.1: "we can match t1 and
	// t4, and t1 and t5 using keys (1) and (2)... using key (3), we can
	// now match t1 and t6").
	if !match(rcks[1], 4) {
		t.Error("rck2 must match (t1, t4)")
	}
	if !match(rcks[2], 5) {
		t.Error("rck3 must match (t1, t5)")
	}
	if !match(rcks[3], 6) {
		t.Error("rck4 must match (t1, t6)")
	}
	// And nothing matches the unrelated card holder t2.
	t2, _ := d.Left.ByID(2)
	for i, k := range rcks {
		for _, tb := range d.Right.Tuples {
			m, err := MatchByKey(d, k, t2, tb)
			if err != nil {
				t.Fatal(err)
			}
			if m {
				t.Errorf("rck%d wrongly matches (t2, t%d)", i+1, tb.ID)
			}
		}
	}
}

// TestFigure2Enforcement reproduces Figure 2 / Example 2.2: enforcing ϕ2
// on Dc identifies t1[addr] and t4[post].
func TestFigure2Enforcement(t *testing.T) {
	_, sigma, _, d := figure1(t)
	phi2 := sigma[1]
	res, err := Enforce(d, []core.MD{phi2})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Instance
	t1, _ := out.Left.ByID(1)
	t4, _ := out.Right.ByID(4)
	t6, _ := out.Right.ByID(6)
	addr := out.Left.MustGet(t1, "addr")
	if post := out.Right.MustGet(t4, "post"); post != addr {
		t.Errorf("t1[addr]=%q and t4[post]=%q must be identified", addr, post)
	}
	if post := out.Right.MustGet(t6, "post"); post != addr {
		t.Errorf("t1[addr]=%q and t6[post]=%q must be identified", addr, post)
	}
	// The original D is untouched ("no destructive impact on D").
	origT4, _ := d.Right.ByID(4)
	if got := d.Right.MustGet(origT4, "post"); got != "NJ" {
		t.Errorf("original instance mutated: t4[post] = %q", got)
	}
	// (Dc, Dc') ⊨ ϕ2.
	ok, err := Satisfies(d, out, phi2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(Dc, Dc') must satisfy ϕ2")
	}
	// The longest-value policy keeps the informative address.
	if addr != "10 Oak Street, MH, NJ 07974" {
		t.Errorf("resolved address = %q", addr)
	}
}

// figure3 builds R(A,B,C) with the instances I0 of Figure 3.
func figure3(t testing.TB) (schema.Pair, []core.MD, *record.PairInstance) {
	t.Helper()
	r := schema.MustStrings("R", "A", "B", "C")
	ctx := schema.MustPair(r, r)
	psi1 := core.MustMD(ctx, []core.Conjunct{core.Eq("A", "A")}, []core.AttrPair{core.P("B", "B")})
	psi2 := core.MustMD(ctx, []core.Conjunct{core.Eq("B", "B")}, []core.AttrPair{core.P("C", "C")})
	i0 := record.NewInstance(r)
	i0.MustAppend("a", "b1", "c1") // s1
	i0.MustAppend("a", "b2", "c2") // s2
	d, err := record.NewPairInstance(ctx, i0, i0)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, []core.MD{psi1, psi2}, d
}

// TestFigure3StableInstances reproduces Example 3.2: enforcing Σ0 on D0
// yields a stable instance in which s1 and s2 agree on B and C.
func TestFigure3StableInstances(t *testing.T) {
	_, sigma0, d0 := figure3(t)
	// D0 is not stable for Σ0 (ψ1 is violated by (s1, s2)).
	stable, err := IsStable(d0, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("D0 must not be stable for Σ0")
	}
	vs, err := Violations(d0, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("expected violations on D0")
	}

	res, err := Enforce(d0, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	d2 := res.Instance
	stable, err = IsStable(d2, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("enforcement result must be stable for Σ0")
	}
	s1 := d2.Left.Tuples[0]
	s2 := d2.Left.Tuples[1]
	if d2.Left.MustGet(s1, "B") != d2.Left.MustGet(s2, "B") {
		t.Error("s1[B] and s2[B] must be identified in D2")
	}
	if d2.Left.MustGet(s1, "C") != d2.Left.MustGet(s2, "C") {
		t.Error("s1[C] and s2[C] must be identified in D2 (cascade through ψ2)")
	}
	// ψ3 = A=A -> C⇌C is satisfied by (D0, D2): Example 3.3.
	ctx := d0.Ctx
	psi3 := core.MustMD(ctx, []core.Conjunct{core.Eq("A", "A")}, []core.AttrPair{core.P("C", "C")})
	ok, err := Satisfies(d0, d2, psi3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(D0, D2) must satisfy ψ3")
	}
	// And (D0, D2) ⊨ Σ0.
	ok, err = SatisfiesAll(d0, d2, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(D0, D2) must satisfy Σ0")
	}
}

// TestExample31NonImplication is the other half of Example 3.1: there
// exists a pair (D0, D1) with (D0, D1) ⊨ Σ0 but (D0, D1) ⊭ ψ3 — i.e.
// traditional implication fails, only the stable-instance deduction
// holds. D1 enforces ψ1 only (B identified, C untouched).
func TestExample31NonImplication(t *testing.T) {
	ctx, sigma0, d0 := figure3(t)
	res, err := Enforce(d0, sigma0[:1]) // enforce ψ1 only
	if err != nil {
		t.Fatal(err)
	}
	d1 := res.Instance
	// (D0, D1) ⊨ ψ1 and ⊨ ψ2 (ψ2 vacuous on D0: s1[B] ≠ s2[B] in D0).
	ok, err := SatisfiesAll(d0, d1, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("(D0, D1) must satisfy Σ0")
	}
	psi3 := core.MustMD(ctx, []core.Conjunct{core.Eq("A", "A")}, []core.AttrPair{core.P("C", "C")})
	ok, err = Satisfies(d0, d1, psi3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("(D0, D1) must NOT satisfy ψ3 — D1 is not stable for Σ0")
	}
	// Indeed D1 is not stable for Σ0 (ψ2 now fires on it).
	stable, err := IsStable(d1, sigma0)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("D1 must not be stable for Σ0")
	}
}
