package semantics

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func TestResolveValue(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"NJ", "NJ07974", "NJ07974"},
		{"NJ07974", "NJ", "NJ07974"},
		{"b1", "b2", "b2"},
		{"x", "x", "x"},
		{"", "a", "a"},
	}
	for _, c := range cases {
		if got := ResolveValue(c.a, c.b); got != c.want {
			t.Errorf("ResolveValue(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
	// Commutative and idempotent by construction.
	for _, a := range []string{"", "x", "ab"} {
		for _, b := range []string{"", "y", "cd"} {
			if ResolveValue(a, b) != ResolveValue(b, a) {
				t.Errorf("ResolveValue not symmetric on (%q, %q)", a, b)
			}
		}
	}
}

func TestMatchLHSErrors(t *testing.T) {
	_, sigma, _, d := figure1(t)
	badMD := sigma[0]
	badMD.LHS = []core.Conjunct{core.Eq("nope", "ln")}
	t1 := d.Left.Tuples[0]
	t3 := d.Right.Tuples[0]
	if _, err := MatchLHS(d, badMD, t1, t3); err == nil {
		t.Fatal("missing attribute must error")
	}
}

func TestSatisfiesRequiresExtension(t *testing.T) {
	_, sigma, _, d := figure1(t)
	smaller := d.Clone()
	smaller.Left.Tuples = smaller.Left.Tuples[:1]
	// d does not extend... smaller is a subset, so smaller extends d? No:
	// Satisfies(d, smaller): smaller lacks tuple 2 -> not an extension.
	if _, err := Satisfies(d, &record.PairInstance{
		Ctx: d.Ctx, Left: record.NewInstance(d.Ctx.Left), Right: d.Right,
	}, sigma[0]); err == nil {
		t.Fatal("non-extension must error")
	}
}

func TestEnforceEmptySigma(t *testing.T) {
	_, _, _, d := figure1(t)
	res, err := Enforce(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applications != 0 {
		t.Fatalf("empty Σ applied %d rules", res.Applications)
	}
	// Result is value-identical to input.
	for i, tt := range d.Left.Tuples {
		got := res.Instance.Left.Tuples[i]
		if strings.Join(got.Values, "|") != strings.Join(tt.Values, "|") {
			t.Fatal("empty enforcement changed values")
		}
	}
}

func TestEnforceInvalidSigma(t *testing.T) {
	ctx, _, _, d := figure1(t)
	if _, err := Enforce(d, []core.MD{{Ctx: ctx}}); err == nil {
		t.Fatal("invalid MD accepted")
	}
}

func TestEnforceIdempotent(t *testing.T) {
	_, sigma, _, d := figure1(t)
	res1, err := Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Enforce(res1.Instance, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applications != 0 {
		t.Fatalf("re-enforcing a stable instance applied %d rules", res2.Applications)
	}
}

func TestEnforceStabilizesFigure1(t *testing.T) {
	_, sigma, target, d := figure1(t)
	res, err := Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := IsStable(res.Instance, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("enforcement must produce a stable instance")
	}
	// After the chase, t1 and every billing tuple of card holder 111
	// agree on the whole target (they form one matched entity).
	out := res.Instance
	t1, _ := out.Left.ByID(1)
	y1, err := out.Left.Project(t1, target.Y1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{4, 6} { // t4 and t6 share tel/email with t1
		tb, _ := out.Right.ByID(id)
		y2, err := out.Right.Project(tb, target.Y2)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(y1, "|") != strings.Join(y2, "|") {
			t.Errorf("after chase, t1[Yc]=%v and t%d[Yb]=%v must agree", y1, id, y2)
		}
	}
}

// TestDeductionSoundnessOnInstances is the bridge between the reasoning
// algorithms and the dynamic semantics, randomized: for MDs ϕ with
// Σ ⊨m ϕ (per core.Deduce) and every chase outcome D′ that is stable for
// Σ with (D, D′) ⊨ Σ, two properties must hold:
//
//  1. stability preservation — D′ is also stable for {ϕ}: a deduced rule
//     needs no further enforcement on any stable instance; and
//  2. the persistent-match reading of (D, D′) ⊨ ϕ.
//
// (The literal clause-(a)∧(b) reading of Section 2.1 does NOT hold here;
// see TestLiteralReadingCounterexample.)
func TestDeductionSoundnessOnInstances(t *testing.T) {
	ctx, sigma, target, _ := figure1(t)
	dl := similarity.DL(0.75)
	deduced := []core.MD{
		// rck2, rck3, rck4 as MDs (rck1 is ϕ1 itself).
		{Ctx: ctx, LHS: []core.Conjunct{core.Eq("ln", "ln"), core.Eq("tel", "phn"), core.C("fn", dl, "fn")}, RHS: target.Pairs()},
		{Ctx: ctx, LHS: []core.Conjunct{core.Eq("email", "email"), core.Eq("addr", "post")}, RHS: target.Pairs()},
		{Ctx: ctx, LHS: []core.Conjunct{core.Eq("email", "email"), core.Eq("tel", "phn")}, RHS: target.Pairs()},
	}
	for i, md := range deduced {
		ok, err := core.Deduce(sigma, md)
		if err != nil || !ok {
			t.Fatalf("precondition: Σ must deduce md%d (ok=%v err=%v)", i, ok, err)
		}
	}

	rnd := rand.New(rand.NewSource(11))
	names := []string{"Mark", "Marx", "David", "M."}
	lns := []string{"Clifford", "Clivord", "Smith"}
	addrs := []string{"10 Oak Street", "NJ", "620 Elm Street"}
	tels := []string{"908-1111111", "908-2222222", "908"}
	emails := []string{"mc@gm.com", "mc", "ds@hm.com"}
	pick := func(xs []string) string { return xs[rnd.Intn(len(xs))] }

	checked := 0
	for trial := 0; trial < 60; trial++ {
		ic := record.NewInstance(ctx.Left)
		ib := record.NewInstance(ctx.Right)
		for i := 0; i < 2+rnd.Intn(2); i++ {
			ic.MustAppend(fmt.Sprint(rnd.Intn(3)), "ssn", pick(names), pick(lns),
				pick(addrs), pick(tels), pick(emails), "M", "visa")
		}
		for i := 0; i < 2+rnd.Intn(3); i++ {
			ib.MustAppend(fmt.Sprint(rnd.Intn(3)), pick(names), pick(lns),
				pick(addrs), pick(tels), pick(emails), "null", "item", "9.99")
		}
		d, err := record.NewPairInstance(ctx, ic, ib)
		if err != nil {
			t.Fatal(err)
		}
		dPrime, pairSat, err := StableFor(d, sigma)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := IsStable(dPrime, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatal("chase produced non-stable instance")
		}
		if !pairSat {
			continue // (D, D′) ⊭ Σ: premise of deduction not met; skip
		}
		checked++
		for i, md := range deduced {
			ok, err := IsStable(dPrime, []core.MD{md})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: stable instance for Σ not stable for deduced md%d\nD:\n%s%s\nD':\n%s%s",
					trial, i, d.Left, d.Right, dPrime.Left, dPrime.Right)
			}
			ok, err = SatisfiesPersistent(d, dPrime, md)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: deduced md%d violated (persistent reading) on stable chase outcome\nD:\n%s%s\nD':\n%s%s",
					trial, i, d.Left, d.Right, dPrime.Left, dPrime.Right)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d/60 trials met the (D, D′) ⊨ Σ premise; generator too noisy", checked)
	}
}

// TestChaseTerminationGuard: a pathological rule set still terminates
// (union-find merges are bounded by cell count).
func TestChaseTerminationGuard(t *testing.T) {
	r := schema.MustStrings("R", "A", "B")
	ctx := schema.MustPair(r, r)
	// Everything similar to everything: A ≈ A under a trivially-true
	// operator identifies B, and vice versa.
	always := similarity.PrefixOp(0) // 0-length shared prefix: always true
	sigma := []core.MD{
		core.MustMD(ctx, []core.Conjunct{core.C("A", always, "A")}, []core.AttrPair{core.P("B", "B")}),
		core.MustMD(ctx, []core.Conjunct{core.C("B", always, "B")}, []core.AttrPair{core.P("A", "A")}),
	}
	in := record.NewInstance(r)
	for i := 0; i < 6; i++ {
		in.MustAppend(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	d, err := record.NewPairInstance(ctx, in, in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := IsStable(res.Instance, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("not stable after chase")
	}
	// All A values identical, all B values identical.
	a0 := res.Instance.Left.MustGet(res.Instance.Left.Tuples[0], "A")
	for _, tt := range res.Instance.Left.Tuples {
		if res.Instance.Left.MustGet(tt, "A") != a0 {
			t.Fatal("A values not fully identified")
		}
	}
}

func TestViolationString(t *testing.T) {
	_, sigma, _, d := figure1(t)
	vs, err := Violations(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("Figure 1 instance must violate Σc somewhere")
	}
	s := vs[0].String()
	if !strings.Contains(s, "matches LHS") {
		t.Errorf("Violation.String() = %q", s)
	}
}
