package matching

import (
	"fmt"

	"mdmatch/internal/exec"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/values"
)

// InternedMatcher is a rule set compiled against the interned view of a
// pair instance: both sides are dictionary-encoded once, and every
// candidate evaluation runs on value IDs through the exec interner —
// equality conjuncts as integer comparisons, similarity conjuncts as
// verdict-cache lookups shared across all pairs of the run (and across
// runs, when the matcher is reused). Build it once per instance and
// feed it as many candidate sets as needed; matching serving workloads
// amortize the one-time interning over every subsequent evaluation.
type InternedMatcher struct {
	it          *exec.Interner
	left, right map[int][]values.ID // tuple id -> interned row
}

// CompileInterned compiles the rule set and dictionary-encodes the
// instance for repeated ID-based candidate matching.
func (r *RuleSet) CompileInterned(d *record.PairInstance) (*InternedMatcher, error) {
	prog, err := r.Compile(d.Ctx)
	if err != nil {
		return nil, err
	}
	m := &InternedMatcher{
		it:    exec.NewInterner(prog),
		left:  make(map[int][]values.ID, d.Left.Len()),
		right: make(map[int][]values.ID, d.Right.Len()),
	}
	for _, t := range d.Left.Tuples {
		m.left[t.ID] = m.it.InternLeft(t.Values, nil)
	}
	for _, t := range d.Right.Tuples {
		m.right[t.ID] = m.it.InternRight(t.Values, nil)
	}
	return m, nil
}

// MatchCandidates applies the rule set to every candidate pair on
// interned rows and returns the matched subset. It agrees with
// RuleSet.MatchCandidates on every input (cross-checked by the bench
// report and interned_test.go).
func (m *InternedMatcher) MatchCandidates(candidates *metrics.PairSet) (*metrics.PairSet, error) {
	out := metrics.NewPairSet()
	for _, p := range candidates.Pairs() {
		lids, ok := m.left[p.Left]
		if !ok {
			return nil, fmt.Errorf("matching: candidate references missing left tuple %d", p.Left)
		}
		rids, ok := m.right[p.Right]
		if !ok {
			return nil, fmt.Errorf("matching: candidate references missing right tuple %d", p.Right)
		}
		if m.it.EvalPairIDs(lids, rids) {
			out.Add(p)
		}
	}
	return out, nil
}
