package matching

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func smallPair(t testing.TB) (schema.Pair, *record.PairInstance, core.Target) {
	t.Helper()
	l := schema.MustStrings("l", "name", "phone", "email")
	r := schema.MustStrings("r", "name", "phone", "email")
	ctx := schema.MustPair(l, r)
	li := record.NewInstance(l)
	li.MustAppend("Mark Clifford", "908-1111111", "mc@gm.com") // 0
	li.MustAppend("David Smith", "908-2222222", "ds@hm.com")   // 1
	ri := record.NewInstance(r)
	ri.MustAppend("Marx Clifford", "908-1111111", "mc@gm.com")  // 0
	ri.MustAppend("Dave Smith", "908-3333333", "other@x.com")   // 1
	ri.MustAppend("Unrelated Person", "111-0000000", "u@p.org") // 2
	d, err := record.NewPairInstance(ctx, li, ri)
	if err != nil {
		t.Fatal(err)
	}
	target, err := core.NewTarget(ctx,
		schema.AttrList{"name", "phone", "email"},
		schema.AttrList{"name", "phone", "email"})
	if err != nil {
		t.Fatal(err)
	}
	return ctx, d, target
}

func TestCompare(t *testing.T) {
	_, d, _ := smallPair(t)
	fields := []Field{
		{Pair: core.P("name", "name"), Op: similarity.DL(0.8)},
		{Pair: core.P("phone", "phone"), Op: similarity.Eq()},
		{Pair: core.P("email", "email"), Op: similarity.Eq()},
	}
	t1 := d.Left.Tuples[0]
	t2 := d.Right.Tuples[0]
	vec, err := Compare(d, fields, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true} // Mark/Marx is 1 edit over 13 runes
	for i := range want {
		if vec[i] != want[i] {
			t.Errorf("vec[%d] = %v, want %v", i, vec[i], want[i])
		}
	}
	vec, err = Compare(d, fields, t1, d.Right.Tuples[2])
	if err != nil {
		t.Fatal(err)
	}
	if vec[0] || vec[1] || vec[2] {
		t.Errorf("unrelated pair compared as %v", vec)
	}
	// Error path.
	if _, err := Compare(d, []Field{{Pair: core.P("zz", "name"), Op: similarity.Eq()}}, t1, t2); err == nil {
		t.Error("bad field accepted")
	}
}

func TestFieldsFromKeys(t *testing.T) {
	ctx, _, target := smallPair(t)
	d := similarity.DL(0.8)
	k1 := core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
		core.Eq("phone", "phone"), core.C("name", d, "name")}}
	k2 := core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
		core.Eq("phone", "phone"), core.Eq("email", "email")}}
	fields := FieldsFromKeys([]core.Key{k1, k2})
	if len(fields) != 3 {
		t.Fatalf("fields = %v, want 3 deduplicated", fields)
	}
	// Same pair with different ops stays distinct.
	k3 := core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
		core.Eq("name", "name")}}
	fields = FieldsFromKeys([]core.Key{k1, k3})
	if len(fields) != 3 {
		t.Fatalf("pair with distinct ops must remain: %v", fields)
	}
}

func TestFieldsFromTarget(t *testing.T) {
	_, _, target := smallPair(t)
	fields := FieldsFromTarget(target, similarity.Eq())
	if len(fields) != 3 {
		t.Fatalf("fields = %d", len(fields))
	}
	for _, f := range fields {
		if !similarity.IsEq(f.Op) {
			t.Errorf("field %v not equality", f)
		}
	}
}

func TestRuleSetMatch(t *testing.T) {
	ctx, d, target := smallPair(t)
	dl := similarity.DL(0.8)
	rules := NewRuleSet(
		core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
			core.Eq("phone", "phone"), core.C("name", dl, "name")}},
		core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
			core.Eq("email", "email")}},
	)
	match := func(i, j int) bool {
		t.Helper()
		ok, err := rules.Match(d, d.Left.Tuples[i], d.Right.Tuples[j])
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !match(0, 0) {
		t.Error("(0,0) must match (phone+name rule and email rule)")
	}
	if match(1, 1) {
		t.Error("(1,1) must not match (no rule satisfied)")
	}
	if match(0, 2) || match(1, 2) {
		t.Error("unrelated tuple matched")
	}
}

func TestRuleSetNegativeVeto(t *testing.T) {
	ctx, d, target := smallPair(t)
	rules := NewRuleSet(core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
		core.Eq("email", "email")}})
	// Sanity: matches before the veto.
	ok, err := rules.Match(d, d.Left.Tuples[0], d.Right.Tuples[0])
	if err != nil || !ok {
		t.Fatalf("precondition match failed: %v %v", ok, err)
	}
	// Veto: identical email but names not even similar -> suspicious.
	neg, err := core.NewNegativeMD(ctx,
		[]core.Conjunct{core.Eq("email", "email"), core.Eq("phone", "phone")},
		target.Pairs())
	if err != nil {
		t.Fatal(err)
	}
	rules.Negative = []core.NegativeMD{neg}
	ok, err = rules.Match(d, d.Left.Tuples[0], d.Right.Tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("negative rule must veto the match")
	}
}

func TestMatchCandidates(t *testing.T) {
	ctx, d, target := smallPair(t)
	rules := NewRuleSet(core.Key{Ctx: ctx, Target: target, Conjuncts: []core.Conjunct{
		core.Eq("email", "email")}})
	cands := AllPairs(d)
	if cands.Len() != 6 {
		t.Fatalf("AllPairs = %d, want 6", cands.Len())
	}
	got, err := rules.MatchCandidates(d, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(metrics.Pair{Left: 0, Right: 0}) {
		t.Fatalf("matches = %v", got.Pairs())
	}
	// Missing tuple id errors.
	bad := metrics.NewPairSet(metrics.Pair{Left: 99, Right: 0})
	if _, err := rules.MatchCandidates(d, bad); err == nil {
		t.Error("missing left tuple accepted")
	}
	bad = metrics.NewPairSet(metrics.Pair{Left: 0, Right: 99})
	if _, err := rules.MatchCandidates(d, bad); err == nil {
		t.Error("missing right tuple accepted")
	}
}

func TestTransitiveClosure(t *testing.T) {
	// l0-r0, l1-r0: closure adds l0-r... and pairs both lefts with all
	// connected rights.
	ms := metrics.NewPairSet(
		metrics.Pair{Left: 0, Right: 0},
		metrics.Pair{Left: 1, Right: 0},
		metrics.Pair{Left: 1, Right: 1},
		metrics.Pair{Left: 5, Right: 7},
	)
	closed := TransitiveClosure(ms)
	want := []metrics.Pair{
		{Left: 0, Right: 0}, {Left: 0, Right: 1},
		{Left: 1, Right: 0}, {Left: 1, Right: 1},
		{Left: 5, Right: 7},
	}
	if closed.Len() != len(want) {
		t.Fatalf("closure = %v", closed.Pairs())
	}
	for _, p := range want {
		if !closed.Has(p) {
			t.Errorf("closure missing %v", p)
		}
	}
	// Closure is idempotent.
	again := TransitiveClosure(closed)
	if again.Len() != closed.Len() {
		t.Error("closure not idempotent")
	}
	// Empty in, empty out.
	if TransitiveClosure(metrics.NewPairSet()).Len() != 0 {
		t.Error("closure of empty set not empty")
	}
}

func TestFieldString(t *testing.T) {
	f := Field{Pair: core.P("a", "b"), Op: similarity.DL(0.8)}
	if f.String() != "a|b dl(0.80)" {
		t.Errorf("Field.String() = %q", f.String())
	}
}
