package matching

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/metrics"
)

// TestInternedMatcherMatchesRuleSet cross-checks the interned candidate
// matcher against the string-path MatchCandidates on a generated
// corpus: same candidates in, same matches out — twice, so cache hits
// are exercised too.
func TestInternedMatcherMatchesRuleSet(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	target := gen.Target(ds.Ctx)
	var keys []core.Key
	for _, md := range gen.HolderMDs(ds.Ctx) {
		k, err := core.NewKey(ds.Ctx, target, md.LHS)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	rules := NewRuleSet(keys...)
	cands := AllPairs(d)

	want, err := rules.MatchCandidates(d, cands)
	if err != nil {
		t.Fatal(err)
	}
	im, err := rules.CompileInterned(d)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := im.MatchCandidates(cands)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() || got.IntersectCount(want) != want.Len() {
			t.Fatalf("round %d: interned matcher found %d matches, string path %d", round, got.Len(), want.Len())
		}
	}

	// Unknown tuple ids must error, not mis-evaluate.
	bogus := metrics.NewPairSet()
	bogus.Add(metrics.Pair{Left: 1 << 30, Right: 0})
	if _, err := im.MatchCandidates(bogus); err == nil {
		t.Fatal("missing left tuple went unnoticed")
	}
}
