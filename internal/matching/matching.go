// Package matching provides the shared machinery of the record matchers:
// comparison fields and vectors, rule sets (relative keys applied as
// matching rules), and candidate-pair handling.
//
// All pair evaluation runs through the compiled kernel (internal/exec):
// rule sets and comparison vectors compile once per run — attribute
// names resolved to positional columns, conjuncts deduplicated — and
// candidate loops evaluate positionally with per-pair memoization of
// shared similarity tests.
package matching

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/exec"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// Field is one comparison: an attribute pair and the operator used to
// compare it (an entry of a comparison vector, Section 2.2).
type Field struct {
	Pair core.AttrPair
	Op   similarity.Operator
}

// String renders the field as "left|right op".
func (f Field) String() string {
	return fmt.Sprintf("%s %s", f.Pair, f.Op.Name())
}

// FieldsFromKeys returns the union of the conjuncts of the given keys as
// comparison fields, deduplicated by (pair, operator). This is the
// "union of top five RCKs" comparison vector of Exp-2 (Section 6.2): the
// union mediates the lower recall of any single RCK ("miss-matches by
// some RCKs could be rectified by the others").
func FieldsFromKeys(keys []core.Key) []Field {
	type fieldID struct {
		pair core.AttrPair
		op   string
	}
	seen := map[fieldID]bool{}
	var out []Field
	for _, k := range keys {
		for _, c := range k.Conjuncts {
			id := fieldID{pair: c.Pair, op: c.OpName()}
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, Field{Pair: c.Pair, Op: c.Op})
		}
	}
	return out
}

// FieldsFromTarget returns one equality field per target pair: the naive
// all-attribute comparison vector used by the baselines.
func FieldsFromTarget(target core.Target, op similarity.Operator) []Field {
	pairs := target.Pairs()
	out := make([]Field, len(pairs))
	for i, p := range pairs {
		out[i] = Field{Pair: p, Op: op}
	}
	return out
}

// CompileFields compiles a field list against a context into the exec
// kernel's vector form: resolve names once, evaluate positionally per
// pair. This is what the matchers use inside candidate loops.
func CompileFields(ctx schema.Pair, fields []Field) (*exec.Vector, error) {
	cs := make([]core.Conjunct, len(fields))
	for i, f := range fields {
		cs[i] = core.Conjunct{Pair: f.Pair, Op: f.Op}
	}
	return exec.CompileVector(ctx, cs)
}

// Compare evaluates the fields on a tuple pair, yielding the binary
// comparison vector γ. It compiles the fields per call — callers
// comparing many pairs should CompileFields once and reuse the vector.
func Compare(d *record.PairInstance, fields []Field, t1, t2 *record.Tuple) ([]bool, error) {
	v, err := CompileFields(d.Ctx, fields)
	if err != nil {
		return nil, err
	}
	return v.Eval(t1.Values, t2.Values, nil), nil
}

// RuleSet applies a set of relative keys as matching rules: a pair
// matches when it satisfies the LHS of at least one key, unless a
// negative rule vetoes it (the Section 8 "negation" extension).
type RuleSet struct {
	Keys     []core.Key
	Negative []core.NegativeMD
}

// NewRuleSet builds a rule set from keys.
func NewRuleSet(keys ...core.Key) *RuleSet { return &RuleSet{Keys: keys} }

// Compile resolves the rule set against a context into an executable
// exec program: one positive rule per key, one negative rule per veto,
// similarity tests deduplicated across all of them. Mutating Keys or
// Negative afterwards does not affect a compiled program.
func (r *RuleSet) Compile(ctx schema.Pair) (*exec.Program, error) {
	rules := make([][]core.Conjunct, len(r.Keys))
	for i, k := range r.Keys {
		rules[i] = k.Conjuncts
	}
	negs := make([][]core.Conjunct, len(r.Negative))
	for i, n := range r.Negative {
		negs[i] = n.LHS
	}
	prog, err := exec.Compile(ctx, rules, negs)
	if err != nil {
		return nil, fmt.Errorf("matching: %w", err)
	}
	return prog, nil
}

// Match reports whether (t1, t2) match under the rule set. It compiles
// per call — callers with many pairs should use MatchCandidates or
// Compile once themselves.
func (r *RuleSet) Match(d *record.PairInstance, t1, t2 *record.Tuple) (bool, error) {
	prog, err := r.Compile(d.Ctx)
	if err != nil {
		return false, err
	}
	return prog.EvalPair(t1.Values, t2.Values, nil), nil
}

// MatchCandidates applies the rule set to every candidate pair and
// returns the matched subset. The rules compile once; every pair then
// evaluates positionally through the kernel with a shared memo, so a
// similarity test occurring in several keys runs at most once per pair.
func (r *RuleSet) MatchCandidates(d *record.PairInstance, candidates *metrics.PairSet) (*metrics.PairSet, error) {
	prog, err := r.Compile(d.Ctx)
	if err != nil {
		return nil, err
	}
	memo := prog.NewMemo()
	out := metrics.NewPairSet()
	for _, p := range candidates.Pairs() {
		t1, ok := d.Left.ByID(p.Left)
		if !ok {
			return nil, fmt.Errorf("matching: candidate references missing left tuple %d", p.Left)
		}
		t2, ok := d.Right.ByID(p.Right)
		if !ok {
			return nil, fmt.Errorf("matching: candidate references missing right tuple %d", p.Right)
		}
		if prog.EvalPair(t1.Values, t2.Values, memo) {
			out.Add(p)
		}
	}
	return out, nil
}

// AllPairs enumerates the full comparison space as candidates. Intended
// for small instances and for computing the no-blocking reference in
// PC/RR; quadratic in data size.
func AllPairs(d *record.PairInstance) *metrics.PairSet {
	out := metrics.NewPairSet()
	for _, t1 := range d.Left.Tuples {
		for _, t2 := range d.Right.Tuples {
			out.Add(metrics.Pair{Left: t1.ID, Right: t2.ID})
		}
	}
	return out
}

// TransitiveClosure expands a match set over the bipartite match graph:
// tuples connected through chains of matches are all pairwise matched
// (the merge phase of the sorted-neighborhood method [20], which treats
// "is the same entity" as an equivalence).
func TransitiveClosure(ms *metrics.PairSet) *metrics.PairSet {
	// Union-find over (side, id) nodes.
	parent := map[[2]int][2]int{}
	var find func(x [2]int) [2]int
	find = func(x [2]int) [2]int {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b [2]int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range ms.Pairs() {
		union([2]int{0, p.Left}, [2]int{1, p.Right})
	}
	// Group members by root.
	groups := map[[2]int][][2]int{}
	seen := map[[2]int]bool{}
	for _, p := range ms.Pairs() {
		for _, node := range [][2]int{{0, p.Left}, {1, p.Right}} {
			if !seen[node] {
				seen[node] = true
				root := find(node)
				groups[root] = append(groups[root], node)
			}
		}
	}
	out := metrics.NewPairSet()
	for _, members := range groups {
		for _, a := range members {
			if a[0] != 0 {
				continue
			}
			for _, b := range members {
				if b[0] == 1 {
					out.Add(metrics.Pair{Left: a[1], Right: b[1]})
				}
			}
		}
	}
	return out
}
