package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIndexInRange(t *testing.T) {
	const n, workers = 500, 4
	hits := make([]int32, n)
	var bad atomic.Bool
	ForWorker(n, workers, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Store(true)
		}
		atomic.AddInt32(&hits[i], 1)
	})
	if bad.Load() {
		t.Fatal("worker index out of range")
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForErrPropagatesFirstError(t *testing.T) {
	want := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForErr(100, workers, func(i int) error {
			if i == 42 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, want)
		}
	}
	if err := ForErr(100, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForErrStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	_ = ForErr(1_000_000, 4, func(i int) error {
		ran.Add(1)
		return errors.New("stop")
	})
	// Each worker stops within its first claimed chunk; far fewer than n
	// items may run.
	if got := ran.Load(); got > 1_000_000/2 {
		t.Fatalf("ran %d items after error; workers did not stop claiming", got)
	}
}

func TestChunkOf(t *testing.T) {
	if c := chunkOf(3, 8); c != 1 {
		t.Fatalf("chunkOf(3,8) = %d, want 1", c)
	}
	if c := chunkOf(1000, 4); c != 1000/(4*chunksPerWorker) {
		t.Fatalf("chunkOf(1000,4) = %d", c)
	}
}
