// Package par is the shared parallel-iteration primitive: a bounded
// worker pool claiming CHUNKED index ranges from one atomic counter.
//
// The obvious dispatch — every worker doing next.Add(1) per item —
// bounces the counter's cache line between cores once per item, which
// caps speedup long before the work does (the serving engine measured
// 1.04x at 4 workers with per-item claiming on queries that cost a few
// microseconds each). Claiming a contiguous chunk per Add amortizes the
// contended atomic over chunkOf(n, workers) items while still
// rebalancing: a worker that drew expensive items simply claims fewer
// chunks.
//
// The functions guarantee nothing about assignment of items to workers
// — callers needing determinism must make per-item work independent
// (pure, or writing only item-indexed slots) and do any order-sensitive
// merging themselves after the call returns.
package par

import (
	"sync"
	"sync/atomic"
)

// chunksPerWorker balances claim contention against imbalance: each
// worker claims ~4 chunks on average, so one slow chunk costs at most
// ~1/4 of a worker's share of the range.
const chunksPerWorker = 4

// chunkOf returns the claim granularity used for a range of n items
// over the given worker count (exported for tests and telemetry).
func chunkOf(n, workers int) int {
	c := n / (workers * chunksPerWorker)
	if c < 1 {
		return 1
	}
	return c
}

// For runs fn(i) for every i in [0, n), fanning out over workers
// goroutines that claim chunked index ranges. workers <= 1 (or a range
// too small to split) runs inline with zero goroutine or atomic
// overhead. fn must be safe for concurrent invocation on distinct i.
func For(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := int64(chunkOf(n, workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				hi := next.Add(chunk)
				lo := hi - chunk
				if lo >= int64(n) {
					return
				}
				if hi > int64(n) {
					hi = int64(n)
				}
				for i := lo; i < hi; i++ {
					fn(int(i))
				}
			}
		}()
	}
	wg.Wait()
}

// ForWorker is For with the claiming goroutine's index passed to fn, so
// callers can give each worker a private buffer (per-worker write
// buffers merged deterministically after the barrier). Worker indices
// are in [0, workers); inline execution uses index 0.
func ForWorker(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := int64(chunkOf(n, workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				hi := next.Add(chunk)
				lo := hi - chunk
				if lo >= int64(n) {
					return
				}
				if hi > int64(n) {
					hi = int64(n)
				}
				for i := lo; i < hi; i++ {
					fn(worker, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForErr is For with error propagation: a worker stops claiming at its
// first error, and the first error observed (by claim order of the
// failing chunk, not necessarily the lowest index) is returned after
// all workers finish. Remaining claimed items of a failing chunk are
// skipped; unclaimed chunks may or may not run, exactly like the
// per-item pool this replaces.
func ForErr(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := int64(chunkOf(n, workers))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				hi := next.Add(chunk)
				lo := hi - chunk
				if lo >= int64(n) {
					return
				}
				if hi > int64(n) {
					hi = int64(n)
				}
				for i := lo; i < hi; i++ {
					if err := fn(int(i)); err != nil {
						errOnce.Do(func() { firstErr = err })
						failed.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
