package record

import (
	"bytes"
	"strings"
	"testing"

	"mdmatch/internal/schema"
)

func personRel() *schema.Relation {
	return schema.MustStrings("person", "name", "addr", "phone")
}

func TestAppendAndLookup(t *testing.T) {
	in := NewInstance(personRel())
	t0 := in.MustAppend("Mark Clifford", "10 Oak St", "908-1111111")
	t1 := in.MustAppend("David Smith", "620 Elm St", "908-2222222")
	if t0.ID != 0 || t1.ID != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", t0.ID, t1.ID)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d", in.Len())
	}
	got, ok := in.ByID(1)
	if !ok || got != t1 {
		t.Fatal("ByID failed")
	}
	if _, ok := in.ByID(99); ok {
		t.Fatal("ByID found missing tuple")
	}
	if v := in.MustGet(t0, "name"); v != "Mark Clifford" {
		t.Fatalf("Get = %q", v)
	}
	if _, err := in.Get(t0, "missing"); err == nil {
		t.Fatal("Get missing attribute must error")
	}
	if _, err := in.Append("too", "few"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestSetAndClone(t *testing.T) {
	in := NewInstance(personRel())
	t0 := in.MustAppend("a", "b", "c")
	cl := in.Clone()
	if err := in.Set(t0, "addr", "changed"); err != nil {
		t.Fatal(err)
	}
	ct, _ := cl.ByID(0)
	if cl.MustGet(ct, "addr") != "b" {
		t.Fatal("Clone shares value storage with original")
	}
	if !in.Extends(cl) || !cl.Extends(in) {
		t.Fatal("clone must extend and be extended by the original")
	}
	if err := in.Set(t0, "missing", "x"); err == nil {
		t.Fatal("Set missing attribute must error")
	}
}

func TestExtends(t *testing.T) {
	in := NewInstance(personRel())
	in.MustAppend("a", "b", "c")
	bigger := in.Clone()
	bigger.MustAppend("d", "e", "f")
	if !bigger.Extends(in) {
		t.Fatal("superset must extend subset")
	}
	if in.Extends(bigger) {
		t.Fatal("subset must not extend superset")
	}
}

func TestAppendWithID(t *testing.T) {
	in := NewInstance(personRel())
	if _, err := in.AppendWithID(7, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.AppendWithID(7, []string{"x", "y", "z"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// nextID continues past explicit ids.
	nt := in.MustAppend("p", "q", "r")
	if nt.ID != 8 {
		t.Fatalf("next id = %d, want 8", nt.ID)
	}
	if _, err := in.AppendWithID(9, []string{"short"}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestProject(t *testing.T) {
	in := NewInstance(personRel())
	t0 := in.MustAppend("n", "a", "p")
	vals, err := in.Project(t0, schema.AttrList{"phone", "name"})
	if err != nil || len(vals) != 2 || vals[0] != "p" || vals[1] != "n" {
		t.Fatalf("Project = %v, %v", vals, err)
	}
	if _, err := in.Project(t0, schema.AttrList{"zzz"}); err == nil {
		t.Fatal("Project missing attribute must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := NewInstance(personRel())
	in.MustAppend("Mark, Jr.", "10 Oak \"St\"", "908")
	in.MustAppend("", "line\nbreak", "x")
	var buf bytes.Buffer
	if err := in.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(personRel(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != in.Len() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.Len(), in.Len())
	}
	for i, orig := range in.Tuples {
		got := back.Tuples[i]
		if got.ID != orig.ID {
			t.Fatalf("tuple %d id mismatch", i)
		}
		for j := range orig.Values {
			if got.Values[j] != orig.Values[j] {
				t.Fatalf("tuple %d value %d: %q vs %q", i, j, got.Values[j], orig.Values[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	rel := personRel()
	cases := []string{
		"",                                       // no header
		"id,wrong,addr,phone\n",                  // wrong header name
		"id,name,addr\n",                         // short header
		"id,name,addr,phone\nx,a,b,c\n",          // bad id
		"id,name,addr,phone\n1,a,b,c\n1,d,e,f\n", // duplicate id
	}
	for i, c := range cases {
		if _, err := ReadCSV(rel, strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestPairInstance(t *testing.T) {
	credit := schema.MustStrings("credit", "name", "tel")
	billing := schema.MustStrings("billing", "name", "phn")
	ctx := schema.MustPair(credit, billing)
	ic := NewInstance(credit)
	ib := NewInstance(billing)
	d, err := NewPairInstance(ctx, ic, ib)
	if err != nil {
		t.Fatal(err)
	}
	if d.Side(schema.Left) != ic || d.Side(schema.Right) != ib {
		t.Fatal("Side lookup broken")
	}
	if d.SelfMatch() {
		t.Fatal("distinct instances flagged as self-match")
	}
	if _, err := NewPairInstance(ctx, ib, ic); err == nil {
		t.Fatal("swapped instances accepted")
	}
	if _, err := NewPairInstance(ctx, nil, ib); err == nil {
		t.Fatal("nil instance accepted")
	}
	ic.MustAppend("a", "1")
	d2 := d.Clone()
	if !d2.Extends(d) || !d.Extends(d2) {
		t.Fatal("pair clone must mutually extend")
	}
}

func TestSelfMatchPairInstanceClone(t *testing.T) {
	person := personRel()
	ctx := schema.MustPair(person, person)
	in := NewInstance(person)
	in.MustAppend("a", "b", "c")
	d, err := NewPairInstance(ctx, in, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SelfMatch() {
		t.Fatal("self-match not detected")
	}
	cl := d.Clone()
	if !cl.SelfMatch() {
		t.Fatal("clone must preserve instance sharing")
	}
}

func TestInstanceString(t *testing.T) {
	in := NewInstance(personRel())
	in.MustAppend("a", "b", "c")
	s := in.String()
	if !strings.Contains(s, "person(") || !strings.Contains(s, "t0: a | b | c") {
		t.Fatalf("String() = %q", s)
	}
}

func TestAtPositionalAccess(t *testing.T) {
	rel := schema.MustStrings("r", "a", "b")
	in := NewInstance(rel)
	tp := in.MustAppend("x", "y")
	i, ok := rel.Index("b")
	if !ok {
		t.Fatal("missing attribute b")
	}
	if got := tp.At(i); got != "y" {
		t.Errorf("At = %q, want %q", got, "y")
	}
	if tp.At(0) != in.MustGet(tp, "a") {
		t.Error("At and MustGet disagree")
	}
}
