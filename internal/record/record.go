// Package record models tuples and relation instances: the data that
// matching dependencies are enforced on. Tuples carry the temporary
// unique tuple ids of Section 2.1 ("to keep track of tuples during a
// matching process, we assume a temporary unique tuple id for each
// tuple"), which define the extension order D ⊑ D′.
package record

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"mdmatch/internal/schema"
	"mdmatch/internal/values"
)

// Tuple is a row of an instance. ID is the temporary tuple id; Values is
// positional, parallel to the relation's attributes.
type Tuple struct {
	ID     int
	Values []string
}

// At returns the value at a positional column index: the no-error
// counterpart of Instance.Get for callers that resolved the attribute
// name to a column once (via Relation.Index), mirroring how the
// compiled kernel (internal/exec) reads positional value slices. The
// caller is responsible for the index being in range.
func (t *Tuple) At(col int) string { return t.Values[col] }

// Clone deep-copies the tuple.
func (t *Tuple) Clone() *Tuple {
	v := make([]string, len(t.Values))
	copy(v, t.Values)
	return &Tuple{ID: t.ID, Values: v}
}

// Instance is a set of tuples over one relation schema.
type Instance struct {
	Rel    *schema.Relation
	Tuples []*Tuple

	byID map[int]*Tuple
}

// NewInstance creates an empty instance of the given relation.
func NewInstance(rel *schema.Relation) *Instance {
	return &Instance{Rel: rel, byID: make(map[int]*Tuple)}
}

// Append adds a tuple built from positional values, assigning the next
// available id. It returns the new tuple.
func (in *Instance) Append(values ...string) (*Tuple, error) {
	if len(values) != in.Rel.Arity() {
		return nil, fmt.Errorf("record: %s expects %d values, got %d", in.Rel.Name(), in.Rel.Arity(), len(values))
	}
	t := &Tuple{ID: in.nextID(), Values: append([]string(nil), values...)}
	in.add(t)
	return t, nil
}

// MustAppend is Append that panics on error.
func (in *Instance) MustAppend(values ...string) *Tuple {
	t, err := in.Append(values...)
	if err != nil {
		panic(err)
	}
	return t
}

// AppendWithID adds a tuple with an explicit id (e.g. loaded from disk).
func (in *Instance) AppendWithID(id int, values []string) (*Tuple, error) {
	if len(values) != in.Rel.Arity() {
		return nil, fmt.Errorf("record: %s expects %d values, got %d", in.Rel.Name(), in.Rel.Arity(), len(values))
	}
	if in.byID == nil {
		in.reindex()
	}
	if _, dup := in.byID[id]; dup {
		return nil, fmt.Errorf("record: duplicate tuple id %d in %s", id, in.Rel.Name())
	}
	t := &Tuple{ID: id, Values: append([]string(nil), values...)}
	in.add(t)
	return t, nil
}

func (in *Instance) add(t *Tuple) {
	if in.byID == nil {
		in.reindex()
	}
	in.Tuples = append(in.Tuples, t)
	in.byID[t.ID] = t
}

func (in *Instance) reindex() {
	in.byID = make(map[int]*Tuple, len(in.Tuples))
	for _, t := range in.Tuples {
		in.byID[t.ID] = t
	}
}

func (in *Instance) nextID() int {
	max := -1
	for _, t := range in.Tuples {
		if t.ID > max {
			max = t.ID
		}
	}
	return max + 1
}

// Len returns the number of tuples.
func (in *Instance) Len() int { return len(in.Tuples) }

// ByID returns the tuple with the given id.
func (in *Instance) ByID(id int) (*Tuple, bool) {
	if in.byID == nil {
		in.reindex()
	}
	t, ok := in.byID[id]
	return t, ok
}

// Get returns tuple t's value of the named attribute.
func (in *Instance) Get(t *Tuple, attr string) (string, error) {
	i, ok := in.Rel.Index(attr)
	if !ok {
		return "", fmt.Errorf("record: %s has no attribute %q", in.Rel.Name(), attr)
	}
	return t.Values[i], nil
}

// MustGet is Get that panics on error.
func (in *Instance) MustGet(t *Tuple, attr string) string {
	v, err := in.Get(t, attr)
	if err != nil {
		panic(err)
	}
	return v
}

// Set updates tuple t's value of the named attribute.
func (in *Instance) Set(t *Tuple, attr, value string) error {
	i, ok := in.Rel.Index(attr)
	if !ok {
		return fmt.Errorf("record: %s has no attribute %q", in.Rel.Name(), attr)
	}
	t.Values[i] = value
	return nil
}

// Clone deep-copies the instance (same tuple ids, fresh value storage).
// Clones witness the extension order: in.Extends(clone) and vice versa.
func (in *Instance) Clone() *Instance {
	out := NewInstance(in.Rel)
	for _, t := range in.Tuples {
		out.add(t.Clone())
	}
	return out
}

// Extends reports whether other ⊑ in: every tuple id of other also
// occurs in in (the updated version of the tuple; values may differ).
func (in *Instance) Extends(other *Instance) bool {
	if in.byID == nil {
		in.reindex()
	}
	for _, t := range other.Tuples {
		if _, ok := in.byID[t.ID]; !ok {
			return false
		}
	}
	return true
}

// Interned builds the columnar interned view of the instance over the
// given per-column dictionaries: every cell's value is interned once
// and represented by its dense values.ID. Dictionary entries may repeat
// to share one dictionary across columns that exchange or compare
// values (the chase's column components); with nil dicts every column
// gets a fresh dictionary.
//
// The view is a snapshot: callers that mutate tuple values afterwards
// keep it in sync through values.Columns.Set/SetKnown (the enforcement
// chase does this from its touch callback).
func (in *Instance) Interned(dicts []*values.Dict) (*values.Columns, error) {
	if dicts == nil {
		dicts = make([]*values.Dict, in.Rel.Arity())
		for i := range dicts {
			dicts[i] = values.NewDict()
		}
	}
	if len(dicts) != in.Rel.Arity() {
		return nil, fmt.Errorf("record: %s has arity %d, got %d dictionaries", in.Rel.Name(), in.Rel.Arity(), len(dicts))
	}
	cols := values.NewColumns(dicts)
	for _, t := range in.Tuples {
		cols.AppendRow(t.Values)
	}
	return cols, nil
}

// Project returns the values of the given attributes for tuple t.
func (in *Instance) Project(t *Tuple, attrs schema.AttrList) ([]string, error) {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		v, err := in.Get(t, a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// String renders a small instance as a table (for debugging and example
// output).
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", in.Rel.String())
	for _, t := range in.Tuples {
		fmt.Fprintf(&b, "  t%d: %s\n", t.ID, strings.Join(t.Values, " | "))
	}
	return b.String()
}

// WriteCSV writes the instance as CSV: a header of "id" plus attribute
// names, then one row per tuple.
func (in *Instance) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, in.Rel.AttrNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range in.Tuples {
		row := append([]string{fmt.Sprint(t.ID)}, t.Values...)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads an instance written by WriteCSV. The header must match
// the relation's attribute names (after the leading "id" column).
func ReadCSV(rel *schema.Relation, r io.Reader) (*Instance, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("record: reading CSV header: %w", err)
	}
	want := append([]string{"id"}, rel.AttrNames()...)
	if len(header) != len(want) {
		return nil, fmt.Errorf("record: CSV header has %d columns, want %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("record: CSV header column %d is %q, want %q", i, header[i], want[i])
		}
	}
	in := NewInstance(rel)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("record: reading CSV line %d: %w", line, err)
		}
		var id int
		if _, err := fmt.Sscanf(row[0], "%d", &id); err != nil {
			return nil, fmt.Errorf("record: CSV line %d: bad id %q", line, row[0])
		}
		if _, err := in.AppendWithID(id, row[1:]); err != nil {
			return nil, fmt.Errorf("record: CSV line %d: %w", line, err)
		}
	}
	return in, nil
}

// PairInstance is an instance D = (I1, I2) of a matching context
// (R1, R2). For self-matching (deduplicating one relation) Left and
// Right may share the same underlying instance.
type PairInstance struct {
	Ctx   schema.Pair
	Left  *Instance
	Right *Instance
}

// NewPairInstance validates that the instances fit the context.
func NewPairInstance(ctx schema.Pair, left, right *Instance) (*PairInstance, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("record: pair instance requires two instances")
	}
	if left.Rel != ctx.Left || right.Rel != ctx.Right {
		return nil, fmt.Errorf("record: instances do not match the context schemas")
	}
	return &PairInstance{Ctx: ctx, Left: left, Right: right}, nil
}

// Side returns the instance on the given side.
func (d *PairInstance) Side(s schema.Side) *Instance {
	if s == schema.Left {
		return d.Left
	}
	return d.Right
}

// Clone deep-copies both sides. If both sides share one instance
// (self-matching), the clone preserves the sharing.
func (d *PairInstance) Clone() *PairInstance {
	l := d.Left.Clone()
	r := l
	if d.Right != d.Left {
		r = d.Right.Clone()
	}
	return &PairInstance{Ctx: d.Ctx, Left: l, Right: r}
}

// Extends reports D' ⊒ D component-wise.
func (d *PairInstance) Extends(other *PairInstance) bool {
	return d.Left.Extends(other.Left) && d.Right.Extends(other.Right)
}

// SelfMatch reports whether both sides share one underlying instance.
func (d *PairInstance) SelfMatch() bool { return d.Left == d.Right }
