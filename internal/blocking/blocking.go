// Package blocking implements the two candidate-space optimizations
// evaluated in Exp-4 of the paper: blocking (partition by key, compare
// within blocks) and windowing (sort by key, compare within a sliding
// window [20]). Keys are built from attribute pairs with optional
// per-field encoders (e.g. Soundex on names, "encoded by Sounex before
// blocking", Section 6.2).
package blocking

import (
	"fmt"
	"sort"
	"strings"

	"mdmatch/internal/core"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// Encoder transforms a field value before it enters a key.
type Encoder func(string) string

// Identity is the no-op encoder.
func Identity(s string) string { return s }

// SoundexEncode encodes with American Soundex.
func SoundexEncode(s string) string { return similarity.Soundex(s) }

// PrefixEncoder returns an encoder keeping the lowercase n-rune prefix.
func PrefixEncoder(n int) Encoder {
	return func(s string) string {
		rs := []rune(strings.ToLower(s))
		if len(rs) > n {
			rs = rs[:n]
		}
		return string(rs)
	}
}

// Key strings join encoded field values with a separator byte. Encoded
// values may themselves contain the separator (nothing stops an encoder
// — or raw data — from emitting \x1f), which would alias distinct keys:
// ("a\x1fb", "c") and ("a", "b\x1fc") must not collide. AppendKeyField
// therefore escapes both the separator and the escape byte inside field
// values, making the rendering injective. The escaping itself lives in
// internal/values (the value layer's leaf package) so the interned key
// fragments of the dictionary store render identically.
const (
	keySep = values.KeySep // unit separator between encoded fields
)

// AppendKeyField writes one encoded field value into a key builder,
// escaping the separator and escape bytes so that distinct field tuples
// always render to distinct key strings. All key rendering — here, in
// the compiled encoders of internal/exec and in the interned key
// fragments of internal/values — shares this one definition.
func AppendKeyField(b *strings.Builder, s string) { values.AppendKeyField(b, s) }

// KeyField is one component of a blocking/sorting key: the attribute on
// each side and the encoder applied to its value.
type KeyField struct {
	Pair   core.AttrPair
	Encode Encoder
}

// KeySpec is an ordered list of key fields. Left and right tuples encode
// to comparable key strings.
type KeySpec struct {
	Fields []KeyField
}

// NewKeySpec builds a key from attribute pairs with the identity encoder.
func NewKeySpec(pairs ...core.AttrPair) KeySpec {
	fields := make([]KeyField, len(pairs))
	for i, p := range pairs {
		fields[i] = KeyField{Pair: p, Encode: Identity}
	}
	return KeySpec{Fields: fields}
}

// WithEncoder returns a copy of the spec with the encoder of field i
// replaced.
func (ks KeySpec) WithEncoder(i int, enc Encoder) KeySpec {
	fields := append([]KeyField(nil), ks.Fields...)
	fields[i].Encode = enc
	return KeySpec{Fields: fields}
}

// keyNameEscaper protects the joiners of KeySpec.String: an attribute
// named "a+b" must not render like two fields "a" and "b".
var keyNameEscaper = strings.NewReplacer(`\`, `\\`, `+`, `\+`, `|`, `\|`)

// String names the key fields, for experiment reports. Attribute names
// containing the field joiner '+' (or the pair separator '|') are
// backslash-escaped so distinct specs never render identically.
func (ks KeySpec) String() string {
	parts := make([]string, len(ks.Fields))
	for i, f := range ks.Fields {
		parts[i] = keyNameEscaper.Replace(f.Pair.Left) + "|" + keyNameEscaper.Replace(f.Pair.Right)
	}
	return strings.Join(parts, "+")
}

// LeftKey builds the key string of a left-side tuple.
func (ks KeySpec) LeftKey(in *record.Instance, t *record.Tuple) (string, error) {
	return ks.key(in, t, true)
}

// RightKey builds the key string of a right-side tuple.
func (ks KeySpec) RightKey(in *record.Instance, t *record.Tuple) (string, error) {
	return ks.key(in, t, false)
}

func (ks KeySpec) key(in *record.Instance, t *record.Tuple, left bool) (string, error) {
	var b strings.Builder
	for i, f := range ks.Fields {
		attr := f.Pair.Left
		if !left {
			attr = f.Pair.Right
		}
		v, err := in.Get(t, attr)
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteByte(keySep)
		}
		enc := f.Encode
		if enc == nil {
			enc = Identity
		}
		AppendKeyField(&b, enc(v))
	}
	return b.String(), nil
}

// FromRCKs derives a blocking key from derived RCKs, as in Exp-4: take
// the first maxFields distinct attribute pairs of the keys (in order),
// Soundex-encoding the name-like fields listed in soundexAttrs.
func FromRCKs(keys []core.Key, maxFields int, soundexAttrs ...string) KeySpec {
	sdx := map[string]bool{}
	for _, a := range soundexAttrs {
		sdx[a] = true
	}
	seen := map[core.AttrPair]bool{}
	var fields []KeyField
	for _, k := range keys {
		for _, c := range k.Conjuncts {
			if seen[c.Pair] {
				continue
			}
			seen[c.Pair] = true
			enc := Identity
			if sdx[c.Pair.Left] || sdx[c.Pair.Right] {
				enc = SoundexEncode
			}
			fields = append(fields, KeyField{Pair: c.Pair, Encode: enc})
			if len(fields) == maxFields {
				return KeySpec{Fields: fields}
			}
		}
	}
	return KeySpec{Fields: fields}
}

// Block partitions both sides by key value and returns all cross-side
// pairs within each block as candidates.
func Block(d *record.PairInstance, ks KeySpec) (*metrics.PairSet, error) {
	if len(ks.Fields) == 0 {
		return nil, fmt.Errorf("blocking: empty key")
	}
	left := map[string][]int{}
	for _, t := range d.Left.Tuples {
		k, err := ks.LeftKey(d.Left, t)
		if err != nil {
			return nil, err
		}
		left[k] = append(left[k], t.ID)
	}
	out := metrics.NewPairSet()
	for _, t := range d.Right.Tuples {
		k, err := ks.RightKey(d.Right, t)
		if err != nil {
			return nil, err
		}
		for _, lid := range left[k] {
			out.Add(metrics.Pair{Left: lid, Right: t.ID})
		}
	}
	return out, nil
}

// taggedRec is one record in the merged sort order of Window.
type taggedRec struct {
	key  string
	left bool
	id   int
}

// Window merges both sides, sorts by key, and slides a window of w
// records over the sorted list; cross-side pairs co-occurring in a
// window become candidates (the sorted-neighborhood candidate space
// [20], fixed window size 10 in Exps 2-3).
func Window(d *record.PairInstance, ks KeySpec, w int) (*metrics.PairSet, error) {
	if len(ks.Fields) == 0 {
		return nil, fmt.Errorf("blocking: empty key")
	}
	if w < 2 {
		return nil, fmt.Errorf("blocking: window must be at least 2, got %d", w)
	}
	recs := make([]taggedRec, 0, d.Left.Len()+d.Right.Len())
	for _, t := range d.Left.Tuples {
		k, err := ks.LeftKey(d.Left, t)
		if err != nil {
			return nil, err
		}
		recs = append(recs, taggedRec{key: k, left: true, id: t.ID})
	}
	for _, t := range d.Right.Tuples {
		k, err := ks.RightKey(d.Right, t)
		if err != nil {
			return nil, err
		}
		recs = append(recs, taggedRec{key: k, left: false, id: t.ID})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		// Stable tie-break keeps the order deterministic.
		if recs[i].left != recs[j].left {
			return recs[i].left
		}
		return recs[i].id < recs[j].id
	})
	out := metrics.NewPairSet()
	for i := range recs {
		hi := i + w
		if hi > len(recs) {
			hi = len(recs)
		}
		for j := i + 1; j < hi; j++ {
			a, b := recs[i], recs[j]
			switch {
			case a.left && !b.left:
				out.Add(metrics.Pair{Left: a.id, Right: b.id})
			case !a.left && b.left:
				out.Add(metrics.Pair{Left: b.id, Right: a.id})
			}
		}
	}
	return out, nil
}

// MultiPass unions the candidate sets of several windowing passes, each
// with its own key ("this process is often repeated multiple times...
// each using a different blocking key", Section 1).
func MultiPass(d *record.PairInstance, keys []KeySpec, w int) (*metrics.PairSet, error) {
	out := metrics.NewPairSet()
	for _, ks := range keys {
		cands, err := Window(d, ks, w)
		if err != nil {
			return nil, err
		}
		for _, p := range cands.Pairs() {
			out.Add(p)
		}
	}
	return out, nil
}

// OrientSelfMatch normalizes a candidate or match set over a self-match
// context (both sides the same instance): identity pairs (t, t) are
// dropped and each unordered pair is kept once, oriented Left < Right.
// Use after Window/Block/MultiPass when deduplicating a single relation
// against itself.
func OrientSelfMatch(ps *metrics.PairSet) *metrics.PairSet {
	out := metrics.NewPairSet()
	for _, p := range ps.Pairs() {
		if p.Left == p.Right {
			continue
		}
		if p.Left > p.Right {
			p.Left, p.Right = p.Right, p.Left
		}
		out.Add(p)
	}
	return out
}
