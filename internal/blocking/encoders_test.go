package blocking

import (
	"testing"
	"testing/quick"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
)

func TestPrefixEncoderProperties(t *testing.T) {
	p4 := PrefixEncoder(4)
	// Always lowercase, never longer than n runes.
	f := func(s string) bool {
		out := p4(s)
		rs := []rune(out)
		if len(rs) > 4 {
			return false
		}
		for _, r := range rs {
			if r >= 'A' && r <= 'Z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Equal inputs encode equally (key stability).
	g := func(s string) bool { return p4(s) == p4(s) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestKeySpecNilEncoder(t *testing.T) {
	// A zero-valued KeyField (nil encoder) must behave as identity.
	l := schema.MustStrings("l", "a")
	r := schema.MustStrings("r", "a")
	ctx := schema.MustPair(l, r)
	li := record.NewInstance(l)
	tl := li.MustAppend("Value")
	ri := record.NewInstance(r)
	ri.MustAppend("Value")
	_ = ctx
	ks := KeySpec{Fields: []KeyField{{Pair: core.P("a", "a")}}}
	k, err := ks.LeftKey(li, tl)
	if err != nil {
		t.Fatal(err)
	}
	if k != "Value" {
		t.Fatalf("nil encoder key = %q", k)
	}
}

func TestKeySpecSeparator(t *testing.T) {
	// Multi-field keys must not collide across field boundaries:
	// ("ab", "c") vs ("a", "bc").
	l := schema.MustStrings("l", "x", "y")
	li := record.NewInstance(l)
	t1 := li.MustAppend("ab", "c")
	t2 := li.MustAppend("a", "bc")
	ks := NewKeySpec(core.P("x", "x"), core.P("y", "y"))
	k1, err := ks.LeftKey(li, t1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ks.LeftKey(li, t2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatalf("field-boundary collision: %q", k1)
	}
}

func TestKeySpecString(t *testing.T) {
	ks := NewKeySpec(core.P("a", "b"), core.P("c", "d"))
	if ks.String() != "a|b+c|d" {
		t.Fatalf("String() = %q", ks.String())
	}
}

func TestWithEncoderDoesNotMutate(t *testing.T) {
	ks := NewKeySpec(core.P("a", "b"))
	ks2 := ks.WithEncoder(0, SoundexEncode)
	if ks.Fields[0].Encode("Smith") != "Smith" {
		t.Fatal("WithEncoder mutated the original spec")
	}
	if ks2.Fields[0].Encode("Smith") == "Smith" {
		t.Fatal("WithEncoder did not set the new encoder")
	}
}
