package blocking

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func pairFixture(t testing.TB) *record.PairInstance {
	t.Helper()
	l := schema.MustStrings("l", "name", "zip")
	r := schema.MustStrings("r", "name", "zip")
	ctx := schema.MustPair(l, r)
	li := record.NewInstance(l)
	li.MustAppend("Clifford", "07974") // 0
	li.MustAppend("Smith", "07974")    // 1
	li.MustAppend("Jones", "10001")    // 2
	ri := record.NewInstance(r)
	ri.MustAppend("Clivord", "07974") // 0: same soundex as Clifford
	ri.MustAppend("Smith", "07974")   // 1
	ri.MustAppend("Brown", "99999")   // 2
	d, err := record.NewPairInstance(ctx, li, ri)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncoders(t *testing.T) {
	if Identity("x Y") != "x Y" {
		t.Error("Identity broken")
	}
	if SoundexEncode("Clifford") != SoundexEncode("Clivord") {
		t.Error("SoundexEncode must conflate Clifford/Clivord")
	}
	p3 := PrefixEncoder(3)
	if p3("Clifford") != "cli" || p3("ab") != "ab" {
		t.Errorf("PrefixEncoder: %q %q", p3("Clifford"), p3("ab"))
	}
}

func TestBlockExactKey(t *testing.T) {
	d := pairFixture(t)
	ks := NewKeySpec(core.P("zip", "zip"))
	cands, err := Block(d, ks)
	if err != nil {
		t.Fatal(err)
	}
	// zip 07974: lefts {0,1} × rights {0,1} = 4 pairs; others isolated.
	if cands.Len() != 4 {
		t.Fatalf("candidates = %v", cands.Pairs())
	}
	for _, p := range []metrics.Pair{{Left: 0, Right: 0}, {Left: 0, Right: 1}, {Left: 1, Right: 0}, {Left: 1, Right: 1}} {
		if !cands.Has(p) {
			t.Errorf("missing %v", p)
		}
	}
}

func TestBlockSoundexKey(t *testing.T) {
	d := pairFixture(t)
	ks := NewKeySpec(core.P("name", "name")).WithEncoder(0, SoundexEncode)
	cands, err := Block(d, ks)
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Has(metrics.Pair{Left: 0, Right: 0}) {
		t.Error("soundex blocking must co-block Clifford/Clivord")
	}
	if !cands.Has(metrics.Pair{Left: 1, Right: 1}) {
		t.Error("identical names must co-block")
	}
	if cands.Has(metrics.Pair{Left: 2, Right: 2}) {
		t.Error("Jones/Brown must not co-block")
	}
}

func TestBlockErrors(t *testing.T) {
	d := pairFixture(t)
	if _, err := Block(d, KeySpec{}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Block(d, NewKeySpec(core.P("zz", "zip"))); err == nil {
		t.Error("bad attribute accepted")
	}
	if _, err := Block(d, NewKeySpec(core.P("zip", "zz"))); err == nil {
		t.Error("bad right attribute accepted")
	}
}

func TestWindow(t *testing.T) {
	d := pairFixture(t)
	ks := NewKeySpec(core.P("zip", "zip"))
	// Window covering everything yields all cross pairs.
	all, err := Window(d, ks, 6)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 9 {
		t.Fatalf("full window candidates = %d, want 9", all.Len())
	}
	// Window of 2 only pairs adjacent records in sort order.
	w2, err := Window(d, ks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() >= all.Len() {
		t.Fatalf("w=2 candidates (%d) must be fewer than full (%d)", w2.Len(), all.Len())
	}
	// Same-zip tuples sort together, so the 07974 block contributes.
	found := false
	for _, p := range w2.Pairs() {
		if p.Left <= 1 && p.Right <= 1 {
			found = true
		}
	}
	if !found {
		t.Error("w=2 lost all same-zip pairs")
	}
	// Errors.
	if _, err := Window(d, ks, 1); err == nil {
		t.Error("window < 2 accepted")
	}
	if _, err := Window(d, KeySpec{}, 5); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Window(d, NewKeySpec(core.P("zz", "zip")), 5); err == nil {
		t.Error("bad attribute accepted")
	}
}

func TestWindowDeterministic(t *testing.T) {
	d := pairFixture(t)
	ks := NewKeySpec(core.P("zip", "zip"), core.P("name", "name"))
	a, err := Window(d, ks, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Window(d, ks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("windowing not deterministic")
	}
	for _, p := range a.Pairs() {
		if !b.Has(p) {
			t.Fatal("windowing not deterministic")
		}
	}
}

func TestMultiPass(t *testing.T) {
	d := pairFixture(t)
	k1 := NewKeySpec(core.P("zip", "zip"))
	k2 := NewKeySpec(core.P("name", "name")).WithEncoder(0, SoundexEncode)
	multi, err := MultiPass(d, []KeySpec{k1, k2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Window(d, k1, 2)
	b, _ := Window(d, k2, 2)
	if multi.Len() < a.Len() || multi.Len() < b.Len() {
		t.Error("multi-pass must be a superset of each pass")
	}
	for _, p := range a.Pairs() {
		if !multi.Has(p) {
			t.Error("multi-pass lost a pass-1 candidate")
		}
	}
	if _, err := MultiPass(d, []KeySpec{{}}, 2); err == nil {
		t.Error("bad pass accepted")
	}
}

func TestFromRCKs(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	target := gen.Target(ds.Ctx)
	keys, err := core.FindRCKs(ds.Ctx, gen.HolderMDs(ds.Ctx), target, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ks := FromRCKs(keys, 3, "fn", "ln")
	if len(ks.Fields) != 3 {
		t.Fatalf("FromRCKs produced %d fields, want 3 (key=%s)", len(ks.Fields), ks)
	}
	// Name fields must be soundex-encoded.
	for _, f := range ks.Fields {
		if f.Pair.Left == "fn" || f.Pair.Left == "ln" {
			if f.Encode("Clifford") != similarity.Soundex("Clifford") {
				t.Error("name field not soundex-encoded")
			}
		}
	}
	// Keys must produce valid key strings on the data.
	if _, err := Block(ds.Pair(), ks); err != nil {
		t.Fatalf("RCK-derived key unusable: %v", err)
	}
	// maxFields larger than available pairs: returns what exists.
	wide := FromRCKs(keys[:1], 99)
	if len(wide.Fields) != keys[0].Length() {
		t.Errorf("FromRCKs wide = %d fields, want %d", len(wide.Fields), keys[0].Length())
	}
}

func TestOrientSelfMatch(t *testing.T) {
	in := metrics.NewPairSet(
		metrics.Pair{Left: 3, Right: 3}, // identity: dropped
		metrics.Pair{Left: 5, Right: 2}, // reversed: oriented
		metrics.Pair{Left: 2, Right: 5}, // duplicate of the above
		metrics.Pair{Left: 1, Right: 4},
	)
	out := OrientSelfMatch(in)
	if out.Len() != 2 {
		t.Fatalf("oriented set = %v", out.Pairs())
	}
	if !out.Has(metrics.Pair{Left: 2, Right: 5}) || !out.Has(metrics.Pair{Left: 1, Right: 4}) {
		t.Fatalf("oriented set = %v", out.Pairs())
	}
	if out.Has(metrics.Pair{Left: 3, Right: 3}) {
		t.Fatal("identity pair survived")
	}
}

func TestBlockingBeatsNothingOnTruth(t *testing.T) {
	// End-to-end sanity: on a generated dataset, zip+soundex(name)
	// blocking keeps a decent share of true matches while cutting the
	// space by a lot.
	ds, err := gen.Generate(gen.DefaultConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	ks := NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).WithEncoder(0, SoundexEncode)
	cands, err := Block(d, ks)
	if err != nil {
		t.Fatal(err)
	}
	bq := metrics.EvaluateBlocking(cands, ds.Truth(), ds.TotalPairs())
	if bq.RR() < 0.9 {
		t.Errorf("reduction ratio = %.3f, expected > 0.9", bq.RR())
	}
	if bq.PC() < 0.15 {
		t.Errorf("pairs completeness = %.3f, expected some true matches to survive", bq.PC())
	}
}

// TestKeySeparatorCollision is the regression test for the blocking-key
// aliasing bug: raw values containing the \x1f separator used to make
// distinct field tuples concatenate into one key string, putting
// unrelated records in the same block.
func TestKeySeparatorCollision(t *testing.T) {
	l := schema.MustStrings("l", "a", "b")
	r := schema.MustStrings("r", "a", "b")
	ctx := schema.MustPair(l, r)
	li := record.NewInstance(l)
	t1 := li.MustAppend("x\x1fy", "z")
	t2 := li.MustAppend("x", "y\x1fz")
	ks := NewKeySpec(core.P("a", "a"), core.P("b", "b"))
	k1, err := ks.LeftKey(li, t1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ks.LeftKey(li, t2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatalf("distinct field tuples alias to key %q", k1)
	}
	// The escape byte itself must stay injective too.
	t3 := li.MustAppend("x\x1c", "y")
	t4 := li.MustAppend("x", "\x1cy")
	k3, _ := ks.LeftKey(li, t3)
	k4, _ := ks.LeftKey(li, t4)
	if k3 == k4 {
		t.Fatalf("escape-byte tuples alias to key %q", k3)
	}
	// Block must now separate the aliasing tuples.
	ri := record.NewInstance(r)
	ri.MustAppend("x\x1fy", "z")
	d, err := record.NewPairInstance(ctx, li, ri)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Block(d, ks)
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Has(metrics.Pair{Left: t1.ID, Right: 0}) {
		t.Error("equal field tuples must still block together")
	}
	if cands.Has(metrics.Pair{Left: t2.ID, Right: 0}) {
		t.Error("separator-aliasing tuples must not block together")
	}
}

// TestKeySpecStringEscapesJoiners covers the '+' collision in
// KeySpec.String: attribute names containing the joiner are escaped so
// distinct specs never render identically.
func TestKeySpecStringEscapesJoiners(t *testing.T) {
	// Before the fix both specs rendered "a|b+c+d|e".
	s1 := NewKeySpec(core.P("a", "b+c"), core.P("d", "e")).String()
	s2 := NewKeySpec(core.P("a", "b"), core.P("c+d", "e")).String()
	s3 := NewKeySpec(core.P("a", "x")).String()
	if s1 == s2 {
		t.Errorf("specs with '+' in names render identically: %q", s1)
	}
	if s3 != "a|x" {
		t.Errorf("plain names must render unescaped, got %q", s3)
	}
}
