// Fraud detection: the paper's motivating scenario (Section 1) at data
// scale. A bank must cross-check billing records against card-holder
// records to detect payment fraud. This example:
//
//  1. generates a dirty credit/billing dataset (80% duplicates, 80%
//     per-attribute noise — the Section 6.2 protocol);
//  2. derives quality RCKs from the 7 card-holder MDs, using data
//     statistics (average value lengths) in the cost model;
//  3. blocks the comparison space with an RCK-derived key;
//  4. matches with the RCKs as rules and reports precision/recall.
//
// Run with: go run ./examples/frauddetect
package main

import (
	"fmt"
	"log"

	"mdmatch"
)

func main() {
	// 1. Data: 2000 card holders, dirtied per the paper's protocol.
	cfg := mdmatch.DefaultGenConfig(2000)
	ds, err := mdmatch.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Pair()
	fmt.Printf("dataset: %d credit tuples x %d billing tuples (%d true matches in a %d-pair space)\n",
		ds.Credit.Len(), ds.Billing.Len(), ds.Truth().Len(), ds.TotalPairs())

	// 2. Reasoning: derive matching keys from the MDs at compile time.
	target := mdmatch.CreditBillingTarget(ds.Ctx)
	sigma := mdmatch.CreditBillingMDs(ds.Ctx)
	cm := mdmatch.DefaultCostModel()
	cm.Lt = ds.LtStats() // prefer short, reliable attributes
	keys, err := mdmatch.FindRCKs(ds.Ctx, sigma, target, 8, cm)
	if err != nil {
		log.Fatal(err)
	}
	keys = mdmatch.PruneSubsumed(keys)
	if len(keys) > 5 {
		keys = keys[:5]
	}
	fmt.Println("\nderived matching keys:")
	for i, k := range keys {
		fmt.Printf("  rck%d: %s\n", i+1, k)
	}

	// 3. Blocking: an RCK-derived key (names Soundex-encoded) cuts the
	// comparison space by orders of magnitude.
	blockKey := mdmatch.KeySpecFromRCKs(keys, 3, "fn", "ln")
	candidates, err := mdmatch.Block(d, blockKey)
	if err != nil {
		log.Fatal(err)
	}
	bq := mdmatch.EvaluateBlocking(candidates, ds.Truth(), ds.TotalPairs())
	fmt.Printf("\nblocking on %s: %d candidate pairs, PC=%.3f RR=%.4f\n",
		blockKey, candidates.Len(), bq.PC(), bq.RR())

	// Add two windowing passes so records with a dirty blocking field
	// still meet (multi-pass, as the paper prescribes).
	phonePass, err := mdmatch.Window(d, mdmatch.NewKeySpec(mdmatch.P("tel", "phn")), 10)
	if err != nil {
		log.Fatal(err)
	}
	zipPass, err := mdmatch.Window(d, mdmatch.NewKeySpec(mdmatch.P("zip", "zip"), mdmatch.P("dob", "dob")), 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range phonePass.Pairs() {
		candidates.Add(p)
	}
	for _, p := range zipPass.Pairs() {
		candidates.Add(p)
	}

	// 4. Matching: the RCKs as rules over the candidates.
	rules := mdmatch.NewRuleSet(keys...)
	matches, err := rules.MatchCandidates(d, candidates)
	if err != nil {
		log.Fatal(err)
	}
	matches = mdmatch.TransitiveClosure(matches)
	q := mdmatch.Evaluate(matches, ds.Truth())
	fmt.Printf("\nrule-based matching over %d candidates:\n  %s\n", candidates.Len(), q)

	// Fraud check: billing records whose card number exists but which
	// match no holder are suspicious.
	matchedBilling := map[int]bool{}
	for _, p := range matches.Pairs() {
		matchedBilling[p.Right] = true
	}
	suspicious := 0
	for _, t := range ds.Billing.Tuples {
		if !matchedBilling[t.ID] {
			suspicious++
		}
	}
	fmt.Printf("\n%d of %d billing records match no card holder -> flagged for review\n",
		suspicious, ds.Billing.Len())
}
