// Merge/purge deduplication within a single relation: the classic
// mailing-list scenario of Hernández & Stolfo [20]. Matching
// dependencies handle this as the self-match context (R, R) — the left
// and right copies of the relation are matched against each other.
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"

	"mdmatch"
)

func main() {
	// Build a person list with duplicates from the credit side of the
	// generator (each holder appears once clean and possibly once dirty).
	ds, err := mdmatch.GenerateDataset(mdmatch.DefaultGenConfig(1500))
	if err != nil {
		log.Fatal(err)
	}
	people := ds.Credit
	ctx, err := mdmatch.NewPair(people.Rel, people.Rel) // self-match (R, R)
	if err != nil {
		log.Fatal(err)
	}
	d, err := mdmatch.NewPairInstance(ctx, people, people)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("person list: %d records (duplicates to purge: %d)\n",
		people.Len(), people.Len()-1500)

	// Self-match MDs: same email -> same name; same phone -> same street;
	// name+street+city similar -> same person.
	dl := mdmatch.DL(0.8)
	target, err := mdmatch.NewTarget(ctx,
		mdmatch.AttrList{"fn", "ln", "street", "city", "zip", "tel", "email", "dob"},
		mdmatch.AttrList{"fn", "ln", "street", "city", "zip", "tel", "email", "dob"})
	if err != nil {
		log.Fatal(err)
	}
	mkMD := func(lhs []mdmatch.Conjunct, rhs []mdmatch.AttrPair) mdmatch.MD {
		md, err := mdmatch.NewMD(ctx, lhs, rhs)
		if err != nil {
			log.Fatal(err)
		}
		return md
	}
	sigma := []mdmatch.MD{
		mkMD([]mdmatch.Conjunct{mdmatch.C("email", dl, "email")},
			[]mdmatch.AttrPair{mdmatch.P("fn", "fn"), mdmatch.P("ln", "ln")}),
		mkMD([]mdmatch.Conjunct{mdmatch.C("tel", dl, "tel")},
			[]mdmatch.AttrPair{mdmatch.P("street", "street"), mdmatch.P("city", "city"), mdmatch.P("zip", "zip")}),
		mkMD([]mdmatch.Conjunct{mdmatch.C("ln", dl, "ln"), mdmatch.C("fn", dl, "fn"),
			mdmatch.C("street", dl, "street"), mdmatch.C("city", dl, "city")},
			target.Pairs()),
		mkMD([]mdmatch.Conjunct{mdmatch.C("dob", dl, "dob"), mdmatch.C("ln", dl, "ln"), mdmatch.C("fn", dl, "fn")},
			target.Pairs()),
		mkMD([]mdmatch.Conjunct{mdmatch.C("cno", dl, "cno")},
			target.Pairs()),
	}
	keys, err := mdmatch.FindRCKs(ctx, sigma, target, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	keys = mdmatch.PruneSubsumed(keys)
	fmt.Println("\ndeduced dedup keys:")
	for i, k := range keys {
		fmt.Printf("  rck%d: %s\n", i+1, k)
	}

	// Multi-pass sorted neighborhood over the self-match pair.
	passes := []mdmatch.KeySpec{
		mdmatch.NewKeySpec(mdmatch.P("ln", "ln"), mdmatch.P("zip", "zip")),
		mdmatch.NewKeySpec(mdmatch.P("tel", "tel")),
		mdmatch.NewKeySpec(mdmatch.P("dob", "dob"), mdmatch.P("fn", "fn")),
	}
	candidates := mdmatch.NewPairSet()
	for _, ks := range passes {
		cands, err := mdmatch.Window(d, ks, 10)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range cands.Pairs() {
			candidates.Add(p)
		}
	}
	// Self-match hygiene: drop (t, t) pairs, count each unordered pair once.
	candidates = mdmatch.OrientSelfMatch(candidates)

	rules := mdmatch.NewRuleSet(keys...)
	matches, err := rules.MatchCandidates(d, candidates)
	if err != nil {
		log.Fatal(err)
	}
	oriented := mdmatch.OrientSelfMatch(mdmatch.TransitiveClosure(matches))

	// Ground truth: same-holder pairs, oriented.
	truth := mdmatch.NewPairSet()
	byHolder := map[int][]int{}
	for id, h := range ds.CreditHolder {
		byHolder[h] = append(byHolder[h], id)
	}
	for _, ids := range byHolder {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a > b {
					a, b = b, a
				}
				truth.Add(mdmatch.PairRef{Left: a, Right: b})
			}
		}
	}
	q := mdmatch.Evaluate(oriented, truth)
	fmt.Printf("\nmerge/purge over %d candidates:\n  %s\n", candidates.Len(), q)

	// Purge: keep one record per matched cluster.
	drop := map[int]bool{}
	for _, p := range oriented.Pairs() {
		drop[p.Right] = true // keep the smaller id
	}
	fmt.Printf("\npurged list: %d records (removed %d duplicates)\n",
		people.Len()-len(drop), len(drop))
}
