// Streaming merge/purge: the classic mailing-list deduplication
// scenario of Hernández & Stolfo, run ONLINE. Records arrive one at a
// time; an incremental enforcement engine (mdmatch.StreamEnforcer)
// keeps the chase of Section 3.1 alive across insertions, so each
// arrival pays only for the frontier its blocking keys touch, answers
// with its cluster immediately, and the maintained instance is always
// the stable instance of the data seen so far.
//
// The walkthrough narrates what the batch APIs hide:
//
//  1. every insertion reports the rules its arrival fired and the
//     cluster the record landed in;
//  2. enforcement RESOLVES values — a record's stored row can grow more
//     informative after someone else's insertion;
//  3. after the stream ends, the cluster store IS the merge/purge
//     result: keep one record per cluster.
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"mdmatch"
)

func main() {
	// A person list with duplicates, from the credit side of the
	// generator (each holder appears once clean and possibly once
	// dirty), arriving in random order.
	ds, err := mdmatch.GenerateDataset(mdmatch.DefaultGenConfig(1500))
	if err != nil {
		log.Fatal(err)
	}
	people := ds.Credit
	arrivals := append([]*mdmatch.Tuple(nil), people.Tuples...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })

	// The self-match context (R, R) and its dedup rules: equality and
	// Soundex conjuncts seed the chase frontier from join indexes;
	// similarity conjuncts ride the interned verdict caches.
	ctx, err := mdmatch.NewPair(people.Rel, people.Rel)
	if err != nil {
		log.Fatal(err)
	}
	sigma := mdmatch.CreditDedupMDs(ctx)
	identity := mdmatch.CreditDedupClusterRules()
	fmt.Printf("streaming %d records (duplicates to purge: %d) under %d dedup MDs\n",
		len(arrivals), len(arrivals)-1500, len(sigma))
	fmt.Printf("record-identity rules (cluster on match): %v; the rest repair attributes only\n\n", identity)

	enf, err := mdmatch.NewStreamEnforcer(ctx, sigma, mdmatch.StreamClusterRules(identity...))
	if err != nil {
		log.Fatal(err)
	}

	// Stream the arrivals. Most records are boring (no rule fires, they
	// become singleton clusters); narrate the first few that are not.
	narrated := 0
	for _, t := range arrivals {
		res, err := enf.InsertTuple(t)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.AppliedMDs) > 0 && narrated < 3 {
			narrated++
			fmt.Printf("record %d arrived: fired MDs %v (%d applications, %d passes), joined cluster %d\n",
				res.ID, res.AppliedMDs, res.Applications, res.Passes, res.Cluster)
			cl, _ := enf.ClusterOf(res.ID)
			fmt.Printf("  cluster %d now holds records %v\n", cl.ID, cl.Members)
			// Enforcement resolved values across the cluster: show one
			// attribute where the stored rows now agree.
			if vals, ok := enf.Record(cl.Members[0]); ok {
				fmt.Printf("  resolved ln/street: %q / %q\n", vals[3], vals[4])
			}
			fmt.Println()
		}
	}

	st := enf.Stats()
	fmt.Printf("stream done: %d records, %d clusters, %d rule applications, %d passes total\n",
		st.Records, st.Clusters, st.Applications, st.Passes)
	fmt.Printf("chase work: %d candidate pairs examined, %d operator evaluations\n\n",
		st.Chase.PairsExamined, st.Chase.LHSEvaluations)

	// Merge/purge: the cluster store is the dedup verdict. Score it
	// against the generator's ground truth (same-holder pairs).
	found := mdmatch.NewPairSet()
	for _, cl := range enf.Clusters() {
		for i := 0; i < len(cl.Members); i++ {
			for j := i + 1; j < len(cl.Members); j++ {
				found.Add(mdmatch.PairRef{Left: cl.Members[i], Right: cl.Members[j]})
			}
		}
	}
	truth := mdmatch.NewPairSet()
	byHolder := map[int][]int{}
	for id, h := range ds.CreditHolder {
		byHolder[h] = append(byHolder[h], id)
	}
	for _, ids := range byHolder {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a > b {
					a, b = b, a
				}
				truth.Add(mdmatch.PairRef{Left: a, Right: b})
			}
		}
	}
	q := mdmatch.Evaluate(found, truth)
	fmt.Printf("streaming merge/purge quality: %s\n", q)

	// Purge: keep the smallest id of each cluster.
	kept := 0
	var sample []string
	for _, cl := range enf.Clusters() {
		kept++
		if len(cl.Members) > 1 && len(sample) < 5 {
			sample = append(sample, fmt.Sprint(cl.Members))
		}
	}
	fmt.Printf("purged list: %d records (removed %d duplicates)\n", kept, st.Records-kept)
	fmt.Printf("sample merged clusters: %s\n", strings.Join(sample, " "))
}
