// Quickstart: author matching dependencies in the rule language, deduce
// relative candidate keys at compile time, and use them to match the
// dirty records of the paper's Figure 1.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mdmatch"
)

// The running example of the paper (Examples 1.1 and 2.1): two sources
// describing credit cards and billing records, three matching
// dependencies capturing the domain knowledge, and the card-holder
// identification target (Yc, Yb).
const rules = `
schema credit(cno, ssn, fn, ln, addr, tel, email, gender, type)
schema billing(cno, fn, ln, post, phn, email, gender, item, price)

pair credit billing

# If two records share last name and address and have similar first
# names, they are the same card holder.
md credit[ln] = billing[ln] && credit[addr] = billing[post] && credit[fn] ~dl(0.75) billing[fn]
   -> credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]

# Same phone: same address. Same email: same name.
md credit[tel] = billing[phn] -> credit[addr] <=> billing[post]
md credit[email] = billing[email] -> credit[fn, ln] <=> billing[fn, ln]

target credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]
`

func main() {
	doc, err := mdmatch.ParseRules(rules)
	if err != nil {
		log.Fatal(err)
	}

	// Compile-time reasoning: derive matching keys from the rules.
	keys, err := mdmatch.FindRCKs(doc.Ctx, doc.MDs, doc.Targets[0], 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Derived relative candidate keys:")
	for i, k := range keys {
		fmt.Printf("  rck%d: %s\n", i+1, k)
	}

	// The Figure 1 instance: one card holder whose billing records are
	// riddled with errors.
	credit := mdmatch.NewInstance(doc.Schemas["credit"])
	t1 := credit.MustAppend("111", "079172485", "Mark", "Clifford",
		"10 Oak Street, MH, NJ 07974", "908-1111111", "mc@gm.com", "M", "master")
	billing := mdmatch.NewInstance(doc.Schemas["billing"])
	billingRows := [][]string{
		{"111", "Marx", "Clifford", "10 Oak Street, MH, NJ 07974", "908", "mc", "null", "iPod", "169.99"},
		{"111", "Marx", "Clifford", "NJ", "908-1111111", "mc", "null", "book", "19.99"},
		{"111", "M.", "Clivord", "10 Oak Street, MH, NJ 07974", "1111111", "mc@gm.com", "null", "PSP", "269.99"},
		{"111", "M.", "Clivord", "NJ", "908-1111111", "mc@gm.com", "null", "CD", "14.99"},
	}
	for _, row := range billingRows {
		billing.MustAppend(row...)
	}
	d, err := mdmatch.NewPairInstance(doc.Ctx, credit, billing)
	if err != nil {
		log.Fatal(err)
	}

	// Match every billing record against the credit record using the
	// deduced keys as rules.
	rulesEngine := mdmatch.NewRuleSet(keys...)
	fmt.Println("\nMatching t1 (Mark Clifford) against the billing records:")
	for _, tb := range billing.Tuples {
		ok, err := rulesEngine.Match(d, t1, tb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t1 vs billing t%d (%s %s): match=%v\n",
			tb.ID+3, billing.MustGet(tb, "fn"), billing.MustGet(tb, "ln"), ok)
	}

	// Enforcement: apply the MDs as matching rules until stable, and see
	// how the dirty values get identified.
	res, err := mdmatch.Enforce(d, doc.MDs)
	if err != nil {
		log.Fatal(err)
	}
	out := res.Instance
	fmt.Printf("\nAfter enforcing Σ (%d rule applications in %d passes; %s):\n",
		res.Applications, res.Passes, res.Stats)
	for _, tb := range out.Right.Tuples {
		fmt.Printf("  billing t%d: fn=%s ln=%s post=%q\n",
			tb.ID+3, out.Right.MustGet(tb, "fn"), out.Right.MustGet(tb, "ln"),
			out.Right.MustGet(tb, "post"))
	}
}
