// Census-style statistical record linkage: the Fellegi–Sunter model with
// EM-estimated parameters, the workhorse of census data processing
// (Exp-2 of the paper). The example fits two models on the same
// candidate pairs — one over a hand-wavy all-attribute comparison
// vector, one over the union of deduced RCKs — and shows what EM learned
// about each field's discriminating power.
//
// Run with: go run ./examples/census
package main

import (
	"fmt"
	"log"

	"mdmatch"
)

func main() {
	ds, err := mdmatch.GenerateDataset(mdmatch.DefaultGenConfig(3000))
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Pair()
	target := mdmatch.CreditBillingTarget(ds.Ctx)
	truth := ds.Truth()

	// Candidate pairs by windowing (window 10), as in the paper.
	sortKey := mdmatch.NewKeySpec(mdmatch.P("ln", "ln"), mdmatch.P("zip", "zip"))
	candidates, err := mdmatch.Window(d, sortKey, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linkage problem: %d x %d records, %d windowed candidate pairs\n",
		ds.Credit.Len(), ds.Billing.Len(), candidates.Len())

	// Baseline vector: every target attribute, DL-compared.
	dl := mdmatch.DL(0.8)
	var baseline []mdmatch.Field
	for i := range target.Y1 {
		baseline = append(baseline, mdmatch.Field{
			Pair: mdmatch.P(target.Y1[i], target.Y2[i]), Op: dl,
		})
	}

	// RCK vector: derive keys, take the union of their fields.
	sigma := mdmatch.CreditBillingMDs(ds.Ctx)
	cm := mdmatch.DefaultCostModel()
	cm.Lt = ds.LtStats()
	keys, err := mdmatch.FindRCKs(ds.Ctx, sigma, target, 8, cm)
	if err != nil {
		log.Fatal(err)
	}
	keys = mdmatch.PruneSubsumed(keys)
	if len(keys) > 5 {
		keys = keys[:5]
	}
	rckFields := mdmatch.FieldsFromKeys(keys)

	run := func(name string, fields []mdmatch.Field) {
		ma := &mdmatch.FSMatcher{Fields: fields, SampleSize: 30000, Seed: 1}
		res, err := ma.Run(d, candidates)
		if err != nil {
			log.Fatal(err)
		}
		q := mdmatch.Evaluate(res.Matches, truth)
		fmt.Printf("\n%s (%d fields): precision=%.4f recall=%.4f f1=%.4f\n",
			name, len(fields), q.Precision(), q.Recall(), q.F1())
		fmt.Printf("  EM estimates: p(match)=%.4f, threshold=%.2f\n", res.Model.P, res.Model.MatchThreshold())
		fmt.Println("  field                    m       u   weight")
		for i, f := range fields {
			fmt.Printf("  %-20s %6.3f %7.4f %8.2f\n",
				f.Pair, res.Model.M[i], res.Model.U[i], res.Model.FieldWeight(i))
		}
	}
	run("FS  — all-attribute vector", baseline)
	run("FSrck — union of top-5 RCKs", rckFields)
}
