package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdmatch/internal/mdlang"
	"mdmatch/internal/record"
)

const testRules = `
schema credit(cno, ssn, fn, ln, addr, tel, email, gender, type)
schema billing(cno, fn, ln, post, phn, email, gender, item, price)
pair credit billing
md credit[ln] = billing[ln] && credit[addr] = billing[post] && credit[fn] ~dl(0.75) billing[fn] -> credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]
md credit[tel] = billing[phn] -> credit[addr] <=> billing[post]
md credit[email] = billing[email] -> credit[fn, ln] <=> billing[fn, ln]
target credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]
`

func writeRules(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rules.md")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around f.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, err := os.ReadFile("/dev/stdin")
	_ = out
	_ = err
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	// Drain any remainder.
	for {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil || n == len(buf) {
			break
		}
	}
	return string(buf[:n]), ferr
}

func TestRunRCKDerivation(t *testing.T) {
	path := writeRules(t, testRules)
	out, err := capture(t, func() error { return run(path, 6, "", "", "", false) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parsed 2 schemas, 3 MDs", "target 1:", "rck1:", "rck5:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeduce(t *testing.T) {
	path := writeRules(t, testRules)
	stmt := "md credit[email] = billing[email] && credit[tel] = billing[phn] -> credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]"
	out, err := capture(t, func() error { return run(path, 0, stmt, "", "", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Σ ⊨m ϕ: true") {
		t.Errorf("deduction verdict missing:\n%s", out)
	}
	// A non-deducible statement reports false.
	weak := "md credit[gender] = billing[gender] -> credit[fn] <=> billing[fn]"
	out, err = capture(t, func() error { return run(path, 0, weak, "", "", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Σ ⊨m ϕ: false") {
		t.Errorf("negative verdict missing:\n%s", out)
	}
}

func TestRunExplainAndClosure(t *testing.T) {
	path := writeRules(t, testRules)
	stmt := "md credit[email] = billing[email] && credit[tel] = billing[phn] -> credit[fn] <=> billing[fn]"
	out, err := capture(t, func() error { return run(path, 0, "", stmt, stmt, false) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[hypothesis]", "∴ deduced", "identified cross pairs", "credit[addr] ⇌ billing[post]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNegativeConflictWarning(t *testing.T) {
	path := writeRules(t, testRules+"\nmd credit[email] = billing[email] && credit[tel] = billing[phn] -> credit[fn, ln, addr, tel, gender] <!> billing[fn, ln, post, phn, gender]\n")
	out, err := capture(t, func() error { return run(path, 0, "", "", "", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "WARNING: negative rule 1 conflicts") {
		t.Errorf("conflict warning missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.md"), 0, "", "", "", false); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeRules(t, "frobnicate")
	if err := run(bad, 0, "", "", "", false); err == nil {
		t.Error("unparsable file accepted")
	}
	// RCK derivation without a target errors.
	noTarget := writeRules(t, "schema a(x)\nschema b(y)\npair a b\nmd a[x] = b[y] -> a[x] <=> b[y]\n")
	if _, err := capture(t, func() error { return run(noTarget, 3, "", "", "", false) }); err == nil {
		t.Error("rck derivation without target accepted")
	}
	// Malformed statements error.
	ok := writeRules(t, testRules)
	if _, err := capture(t, func() error { return run(ok, 0, "md ((", "", "", false) }); err == nil {
		t.Error("malformed -deduce statement accepted")
	}
}

func TestParseStatementMDSelfMatch(t *testing.T) {
	doc, err := mdlang.Parse("schema p(a, b)\npair p p\nmd p[a] = p[a] -> p[b] <=> p[b]\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	md, err := parseStatementMD(doc, "md p[b] = p[b] -> p[a] <=> p[a]")
	if err != nil {
		t.Fatal(err)
	}
	if len(md.LHS) != 1 {
		t.Fatalf("parsed MD = %s", md)
	}
}

// TestRunEnforceReportsCounters drives the -enforce mode end to end:
// write the Figure 1 instances as CSV, chase them, check the counter
// report.
func TestRunEnforceReportsCounters(t *testing.T) {
	rules := writeRules(t, testRules)
	doc, err := mdlang.Parse(testRules, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	li := record.NewInstance(doc.Ctx.Left)
	li.MustAppend("111", "079172485", "Mark", "Clifford", "10 Oak Street, MH, NJ 07974", "908-1111111", "mc@gm.com", "M", "master")
	ri := record.NewInstance(doc.Ctx.Right)
	ri.MustAppend("111", "Marx", "Clifford", "NJ", "908-1111111", "mc", "null", "book", "19.99")
	writeCSV := func(name string, in *record.Instance) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := in.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	lp := writeCSV("credit.csv", li)
	rp := writeCSV("billing.csv", ri)

	out, err := capture(t, func() error { return runEnforce(rules, lp, rp, os.Stdout) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rule applications:", "passes:", "pairs examined=", "LHS evaluations=", "rule firings="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := runEnforce(rules, "", "", os.Stdout); err == nil {
		t.Error("missing -left/-right accepted")
	}
}
