// Command mdreason is the compile-time reasoning tool: it reads a rule
// file (schemas, MDs, targets in the mdmatch rule language), and can
//
//   - validate and echo the rule set (default);
//   - derive quality RCKs for each target (-rck m);
//   - decide whether Σ deduces a given MD (-deduce "md ...");
//   - print the closure of Σ and a hypothesis LHS (-closure "md ...");
//   - enforce Σ on CSV instances and report the chase counters
//     (-enforce -left credit.csv -right billing.csv).
//
// Examples:
//
//	mdreason -rules rules.md
//	mdreason -rules rules.md -rck 5
//	mdreason -rules rules.md -deduce 'md credit[email] = billing[email] && credit[tel] = billing[phn] -> credit[fn] <=> billing[fn]'
//	mdreason -rules rules.md -enforce -left credit.csv -right billing.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdmatch/internal/core"
	"mdmatch/internal/mdlang"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/semantics"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "path to the rule file (required)")
		rck       = flag.Int("rck", 0, "derive up to this many RCKs per target")
		deduce    = flag.String("deduce", "", "an 'md ...' statement to test for deduction from Σ")
		explain   = flag.String("explain", "", "an 'md ...' statement whose full derivation should be printed")
		closure   = flag.String("closure", "", "an 'md ...' statement whose LHS seeds a closure dump")
		prune     = flag.Bool("prune", false, "prune operator-subsumed RCKs before printing")
		enforce   = flag.Bool("enforce", false, "chase the instances of -left/-right to a stable instance and report counters")
		left      = flag.String("left", "", "left-side instance CSV (Instance.WriteCSV / matchgen format)")
		right     = flag.String("right", "", "right-side instance CSV")
	)
	flag.Parse()
	if *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "mdreason: -rules is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*rulesPath, *rck, *deduce, *explain, *closure, *prune); err != nil {
		fmt.Fprintln(os.Stderr, "mdreason:", err)
		os.Exit(1)
	}
	if *enforce {
		if err := runEnforce(*rulesPath, *left, *right, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mdreason:", err)
			os.Exit(1)
		}
	}
}

// runEnforce loads the instances, runs the worklist chase and reports
// the EnforceResult counters.
func runEnforce(rulesPath, leftPath, rightPath string, w *os.File) error {
	if leftPath == "" || rightPath == "" {
		return fmt.Errorf("-enforce requires -left and -right CSV paths")
	}
	text, err := os.ReadFile(rulesPath)
	if err != nil {
		return err
	}
	doc, err := mdlang.Parse(string(text), nil)
	if err != nil {
		return err
	}
	load := func(path string, rel *schema.Relation) (*record.Instance, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return record.ReadCSV(rel, f)
	}
	li, err := load(leftPath, doc.Ctx.Left)
	if err != nil {
		return fmt.Errorf("loading left instance: %w", err)
	}
	var ri *record.Instance
	if doc.Ctx.Right == doc.Ctx.Left && rightPath == leftPath {
		ri = li // self-match on one file
	} else {
		ri, err = load(rightPath, doc.Ctx.Right)
		if err != nil {
			return fmt.Errorf("loading right instance: %w", err)
		}
	}
	d, err := record.NewPairInstance(doc.Ctx, li, ri)
	if err != nil {
		return err
	}
	res, err := semantics.Enforce(d, doc.MDs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nenforced Σ (%d MDs) on %d × %d tuples to a stable instance\n",
		len(doc.MDs), li.Len(), ri.Len())
	fmt.Fprintf(w, "  rule applications: %d\n", res.Applications)
	fmt.Fprintf(w, "  passes:            %d\n", res.Passes)
	fmt.Fprintf(w, "  chase work:        %s\n", res.Stats)
	fullScan := int64(li.Len()) * int64(ri.Len()) * int64(len(doc.MDs)) * int64(res.Passes)
	if fullScan > 0 {
		fmt.Fprintf(w, "  candidate pruning: examined %.1f%% of the %d (rule, pair) visits a full-scan chase performs\n",
			100*float64(res.Stats.PairsExamined)/float64(fullScan), fullScan)
	}
	return nil
}

func run(rulesPath string, rck int, deduceStmt, explainStmt, closureStmt string, prune bool) error {
	text, err := os.ReadFile(rulesPath)
	if err != nil {
		return err
	}
	doc, err := mdlang.Parse(string(text), nil)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d schemas, %d MDs, %d negative MDs, %d targets over %s\n",
		len(doc.Schemas), len(doc.MDs), len(doc.Negatives), len(doc.Targets), doc.Ctx)

	// Consistency: a negative rule that Σ's deductions would force to
	// fire is a specification bug; report it up front.
	for i, n := range doc.Negatives {
		conflict, err := n.ConflictsWith(doc.MDs)
		if err != nil {
			return err
		}
		if conflict {
			fmt.Printf("WARNING: negative rule %d conflicts with Σ: %s\n", i+1, n)
		}
	}

	if deduceStmt != "" {
		phi, err := parseStatementMD(doc, deduceStmt)
		if err != nil {
			return err
		}
		ok, err := core.Deduce(doc.MDs, phi)
		if err != nil {
			return err
		}
		fmt.Printf("\nϕ: %s\nΣ ⊨m ϕ: %v\n", phi, ok)
	}

	if explainStmt != "" {
		phi, err := parseStatementMD(doc, explainStmt)
		if err != nil {
			return err
		}
		exp, err := core.Explain(doc.MDs, phi)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s", exp.Render(doc.MDs))
	}

	if closureStmt != "" {
		phi, err := parseStatementMD(doc, closureStmt)
		if err != nil {
			return err
		}
		cl, err := core.MDClosure(doc.Ctx, doc.MDs, phi.LHS)
		if err != nil {
			return err
		}
		fmt.Printf("\nclosure of Σ and LHS(ϕ) — identified cross pairs:\n")
		for _, p := range cl.IdentifiedPairs() {
			fmt.Printf("  %s[%s] ⇌ %s[%s]\n", doc.Ctx.Left.Name(), p.Left, doc.Ctx.Right.Name(), p.Right)
		}
	}

	if rck > 0 {
		if len(doc.Targets) == 0 {
			return fmt.Errorf("rule file declares no target; add a 'target' statement")
		}
		for i, target := range doc.Targets {
			keys, err := core.FindRCKs(doc.Ctx, doc.MDs, target, rck, nil)
			if err != nil {
				return err
			}
			if prune {
				keys = core.PruneSubsumed(keys)
			}
			fmt.Printf("\ntarget %d: %s[%s] <=> %s[%s]\n", i+1,
				doc.Ctx.Left.Name(), strings.Join(target.Y1, ", "),
				doc.Ctx.Right.Name(), strings.Join(target.Y2, ", "))
			for j, k := range keys {
				fmt.Printf("  rck%d: %s\n", j+1, k)
			}
		}
	}
	return nil
}

// parseStatementMD parses a single "md ..." statement in the context of
// an already-parsed document.
func parseStatementMD(doc *mdlang.Document, stmt string) (core.MD, error) {
	var b strings.Builder
	writeSchema := func(r *schema.Relation) {
		fmt.Fprintf(&b, "schema %s(%s)\n", r.Name(), strings.Join(r.AttrNames(), ", "))
	}
	writeSchema(doc.Ctx.Left)
	if doc.Ctx.Right != doc.Ctx.Left {
		writeSchema(doc.Ctx.Right)
	}
	fmt.Fprintf(&b, "pair %s %s\n%s\n", doc.Ctx.Left.Name(), doc.Ctx.Right.Name(), stmt)
	sub, err := mdlang.Parse(b.String(), nil)
	if err != nil {
		return core.MD{}, fmt.Errorf("parsing statement: %w", err)
	}
	if len(sub.MDs) != 1 {
		return core.MD{}, fmt.Errorf("expected exactly one md statement, got %d", len(sub.MDs))
	}
	return sub.MDs[0], nil
}
