package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdmatch/internal/fault"
	"mdmatch/internal/obs"
)

// validRecord is a well-formed credit record for ingest tests.
func validRecord(fn string) map[string]any {
	return map[string]any{"record": map[string]string{
		"cno": "4000999912341234", "ssn": "987-65-4321",
		"fn": fn, "ln": "Lovelace", "street": "1 Analytical Way",
		"city": "London", "county": "Westminster", "zip": "SW1Y",
		"tel": "555-0199", "email": "fault@example.org",
		"gender": "F", "dob": "1815-12-10", "type": "visa",
	}}
}

// TestServeAdmissionInflight429 pins the in-flight budget: with
// -max-inflight=1, a second data request arriving while the first still
// holds its slot is shed with 429 + Retry-After before its body is
// read, and the budget frees when the first request finishes.
func TestServeAdmissionInflight429(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// The first request holds its admission slot while the handler is
	// blocked reading the body: a pipe with no writer yet.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/match", pr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.inflightReqs.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied its admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/match", "application/json",
		strings.NewReader(`{"record":{"fn":"Augusta","ln":"Byron"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request over the budget = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 is missing a Retry-After header")
	}

	// Release the first request; the budget must free up.
	pw.CloseWithError(io.EOF)
	wg.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for srv.inflightReqs.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released")
		}
		time.Sleep(time.Millisecond)
	}
	status, out := doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"fn": "Augusta", "ln": "Byron"}})
	if status != http.StatusOK {
		t.Fatalf("request after the budget freed = %d (%s), want 200", status, out["error"])
	}
}

// TestServeAdmissionQueue503 pins the high watermark: while the
// enforcer's insert queue is at or above -queue-high-watermark, new
// data requests are shed with 503 + Retry-After. The queue is held up
// deterministically by injecting latency into the WAL append the
// in-flight insert is performing.
func TestServeAdmissionQueue503(t *testing.T) {
	plan := fault.NewPlan()
	cfg := durableConfig(t, t.TempDir())
	cfg.queueHighWatermark = 1
	cfg.faultPlan = plan
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Arm AFTER build so corpus ingest runs at full speed: the next WAL
	// write (the background insert below) stalls for a second.
	plan.Inject(fault.Injection{Op: fault.OpWrite, Index: plan.Count(fault.OpWrite), Delay: time.Second})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, out := doJSON(t, ts, http.MethodPost, "/records", validRecord("Ada"))
		if status != http.StatusOK {
			t.Errorf("delayed insert = %d (%s), want 200", status, out["error"])
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.eng.Stream().QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("insert never showed up in the queue depth")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/match", "application/json",
		strings.NewReader(`{"record":{"fn":"Augusta","ln":"Byron"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request over the watermark = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("watermark 503 is missing a Retry-After header")
	}
	wg.Wait()

	// Queue drained: requests admit again.
	status, out := doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"fn": "Augusta", "ln": "Byron"}})
	if status != http.StatusOK {
		t.Fatalf("request after the queue drained = %d (%s), want 200", status, out["error"])
	}
}

// TestServeLiveFaultDegradesAndRecovers is the end-to-end acceptance
// flow: a WAL write fault injected into a LIVE server flips it to
// degraded-readonly (mutations 503 + Retry-After, reads keep serving,
// /readyz//stats//metrics all report it), and a restart on the same
// directory recovers exactly the pre-fault state — without the record
// whose append failed.
func TestServeLiveFaultDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan()
	cfg := durableConfig(t, dir)
	cfg.faultPlan = plan
	cfg.reg = obs.NewRegistry()
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// One durable ingest while healthy.
	status, out := doJSON(t, ts, http.MethodPost, "/records", validRecord("Ada"))
	if status != http.StatusOK {
		t.Fatalf("healthy ingest = %d (%s)", status, out["error"])
	}
	var id, cluster int
	if err := json.Unmarshal(out["id"], &id); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out["cluster"], &cluster); err != nil {
		t.Fatal(err)
	}
	recordsBefore := srv.eng.Stream().Len()

	// Every WAL write from here on fails with ENOSPC.
	plan.Inject(fault.Injection{
		Op: fault.OpWrite, Index: plan.Count(fault.OpWrite), Sticky: true, Err: fault.ErrDiskFull})

	status, out = doJSON(t, ts, http.MethodPost, "/records", validRecord("Grace"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("ingest on a full disk = %d (%s), want 503", status, out["error"])
	}
	if got := srv.eng.Stream().Len(); got != recordsBefore {
		t.Fatalf("failed ingest still applied: %d -> %d records", recordsBefore, got)
	}
	if got := srv.healthState(); got != healthDegraded {
		t.Fatalf("health after injected WAL failure = %v, want degraded-readonly", got)
	}

	// The next mutation is shed by the read-only gate before it is even
	// decoded (counted as an admission rejection below).
	status, out = doJSON(t, ts, http.MethodPost, "/records", validRecord("Grace"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("mutation while degraded = %d (%s), want 503", status, out["error"])
	}

	// Reads keep serving: match answers and the pre-fault cluster is
	// still queryable.
	status, out = doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"fn": "Augusta", "ln": "Byron"}})
	if status != http.StatusOK {
		t.Fatalf("match while degraded = %d (%s)", status, out["error"])
	}
	status, out = doJSON(t, ts, http.MethodGet, fmt.Sprintf("/clusters/%d", id), nil)
	if status != http.StatusOK {
		t.Fatalf("cluster read while degraded = %d (%s)", status, out["error"])
	}

	// The whole observability surface reports it.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mdmatch_health_state 1",
		`mdmatch_fault_injected_total{op="write"}`,
		"mdmatch_degraded_transitions_total 1",
		`mdmatch_admission_rejected_total{reason="readonly"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics while degraded is missing %q", want)
		}
	}

	// Restart on the same directory with a healthy filesystem: the
	// pre-fault state is back, the failed record is not.
	srv.store().Close()
	cfg2 := durableConfig(t, dir)
	cfg2.reg = obs.NewRegistry()
	srv2, err := buildServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.routes())
	defer ts2.Close()
	defer srv2.store().Close()

	if got := srv2.healthState(); got != healthOK {
		t.Fatalf("health after restart = %v, want ok", got)
	}
	if got := srv2.eng.Stream().Len(); got != recordsBefore {
		t.Fatalf("restart recovered %d records, want %d", got, recordsBefore)
	}
	status, out = doJSON(t, ts2, http.MethodGet, fmt.Sprintf("/clusters/%d", id), nil)
	if status != http.StatusOK {
		t.Fatalf("cluster read after restart = %d (%s)", status, out["error"])
	}
	var cluster2 int
	if err := json.Unmarshal(out["cluster"], &cluster2); err != nil {
		t.Fatal(err)
	}
	if cluster2 != cluster {
		t.Fatalf("cluster after restart = %d, want %d", cluster2, cluster)
	}
	// And mutations work again.
	status, out = doJSON(t, ts2, http.MethodPost, "/records", validRecord("Grace"))
	if status != http.StatusOK {
		t.Fatalf("ingest after restart = %d (%s), want 200", status, out["error"])
	}
}

// TestServeMatchClientGone pins the cancelled-request contract: a
// /match request whose context is already cancelled (the client hung
// up) produces no response body — the handler returns promptly instead
// of matching for nobody and writing into a dead connection.
func TestServeMatchClientGone(t *testing.T) {
	srv := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/match",
		strings.NewReader(`{"batch":[{"record":{"fn":"Augusta","ln":"Byron"}}]}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.routes().ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled request still got a body: %q", rec.Body.String())
	}
}
