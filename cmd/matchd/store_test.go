package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// durableConfig points a test server at a temp data directory with an
// aggressive body cap so the 413 path is cheap to exercise.
func durableConfig(t *testing.T, dir string) config {
	t.Helper()
	cfg := testConfig()
	cfg.dataDir = dir
	cfg.noSync = true // keep tests fast; crash semantics are store-level tested
	cfg.snapBytes = 0 // no background snapshotter: tests trigger explicitly
	return cfg
}

// TestServeBodyLimit413 is the request-hardening regression: a body
// beyond -max-body-bytes must come back as 413 on both POST endpoints,
// and a body just under the cap must still parse.
func TestServeBodyLimit413(t *testing.T) {
	cfg := testConfig()
	cfg.maxBody = 512
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	big := map[string]any{"record": map[string]string{"fn": strings.Repeat("x", 2048)}}
	for _, path := range []string{"/match", "/records"} {
		status, out := doJSON(t, ts, http.MethodPost, path, big)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with oversized body = %d (%s), want 413", path, status, out["error"])
		}
	}
	// Under the cap still works (invalid attribute -> 400, not 413).
	status, _ := doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"nope": "x"}})
	if status != http.StatusBadRequest {
		t.Fatalf("small body after cap = %d, want 400", status)
	}
}

// TestServeDurableRestart is the end-to-end recovery flow: ingest over
// HTTP, snapshot on demand, restart the server on the same directory,
// and find the exact same clusters, records and match answers — without
// the restart re-loading the generated corpus.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())

	rec := map[string]string{
		"cno": "4000123412341234", "ssn": "123-45-6789",
		"fn": "Augusta", "ln": "Byron", "street": "12 St James Square",
		"city": "London", "county": "Westminster", "zip": "SW1Y",
		"tel": "555-0100", "email": "ada@example.org",
		"gender": "F", "dob": "1815-12-10", "type": "visa",
	}
	status, out := doJSON(t, ts, http.MethodPost, "/records", map[string]any{"record": rec})
	if status != http.StatusOK {
		t.Fatalf("POST /records = %d (%s)", status, out["error"])
	}
	var id, cluster int
	if err := json.Unmarshal(out["id"], &id); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out["cluster"], &cluster); err != nil {
		t.Fatal(err)
	}
	// An on-demand snapshot, then one more mutation so recovery has a
	// WAL suffix to replay past the snapshot.
	status, out = doJSON(t, ts, http.MethodPost, "/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("POST /snapshot = %d (%s)", status, out["error"])
	}
	rec2 := map[string]string{}
	for k, v := range rec {
		rec2[k] = v
	}
	rec2["fn"] = "Agusta" // near-duplicate: must cluster with the first
	status, out = doJSON(t, ts, http.MethodPost, "/records", map[string]any{"record": rec2})
	if status != http.StatusOK {
		t.Fatalf("POST /records (dup) = %d (%s)", status, out["error"])
	}
	var id2 int
	if err := json.Unmarshal(out["id"], &id2); err != nil {
		t.Fatal(err)
	}
	wantStream := srv.eng.Stream().Stats()
	ts.Close()
	srv.close()

	// "Restart": a new process over the same directory.
	srv2, err := buildServer(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.close()
	ts2 := httptest.NewServer(srv2.routes())
	defer ts2.Close()

	gotStream := srv2.eng.Stream().Stats()
	wantStream.Chase.LHSEvaluations = 0
	gotStream.Chase.LHSEvaluations = 0
	if gotStream != wantStream {
		t.Fatalf("recovered stream stats = %+v, want %+v", gotStream, wantStream)
	}
	status, out = doJSON(t, ts2, http.MethodGet, fmt.Sprintf("/clusters/%d", id2), nil)
	if status != http.StatusOK {
		t.Fatalf("GET /clusters/%d after restart = %d (%s)", id2, status, out["error"])
	}
	var members []int
	if err := json.Unmarshal(out["members"], &members); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range members {
		if m == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("cluster of %d after restart = %v, does not contain %d", id2, members, id)
	}
	// The restarted engine still matches the ingested record.
	query := map[string]string{
		"cno": "4000123412341234", "fn": "Augusta", "ln": "Byron",
		"street": "12 St James Square", "city": "London",
		"county": "Westminster", "zip": "SW1Y", "phn": "555-0100",
		"email": "ada@example.org", "gender": "F", "dob": "1815-12-10",
	}
	status, out = doJSON(t, ts2, http.MethodPost, "/match", map[string]any{"record": query})
	if status != http.StatusOK {
		t.Fatalf("POST /match after restart = %d", status)
	}
	var matches []int
	if err := json.Unmarshal(out["matches"], &matches); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, m := range matches {
		if m == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("matches after restart = %v, want to include %d", matches, id)
	}
	// Stats expose the store section.
	status, out = doJSON(t, ts2, http.MethodGet, "/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /stats = %d", status)
	}
	var storeSec map[string]json.RawMessage
	if err := json.Unmarshal(out["store"], &storeSec); err != nil {
		t.Fatalf("stats store section: %v (%s)", err, out["store"])
	}
}

// TestServeJournalFailureDegradesReadOnly pins the degraded-mode
// contract: when a valid record cannot be made durable (the WAL is
// broken/closed), POST /records answers 503 + Retry-After — the
// server's fault, retryable against a recovered process — the record
// is NOT applied, the daemon flips to degraded-readonly (visible in
// /readyz and /stats), and reads keep serving.
func TestServeJournalFailureDegradesReadOnly(t *testing.T) {
	cfg := durableConfig(t, t.TempDir())
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	before := srv.eng.Stream().Len()
	srv.store().Close() // every journal append now fails
	status, out := doJSON(t, ts, http.MethodPost, "/records",
		map[string]any{"record": map[string]string{"fn": "Valid"}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("POST /records with a dead journal = %d (%s), want 503", status, out["error"])
	}
	if got := srv.eng.Stream().Len(); got != before {
		t.Fatalf("failed journal append still applied the record: %d -> %d", before, got)
	}
	if got := srv.healthState(); got != healthDegraded {
		t.Fatalf("health after journal failure = %v, want degraded-readonly", got)
	}

	// The 503 carries a Retry-After so clients back off instead of
	// hammering a daemon that needs a restart.
	resp, err := ts.Client().Post(ts.URL+"/records", "application/json",
		strings.NewReader(`{"record":{"fn":"Again"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second POST /records while degraded = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 is missing a Retry-After header")
	}

	// Reads keep answering from memory: /match still works and /readyz
	// stays 200 (the daemon IS serving, just read-only).
	status, out = doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"fn": "Augusta", "ln": "Byron"}})
	if status != http.StatusOK {
		t.Fatalf("POST /match while degraded = %d (%s), want 200", status, out["error"])
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while degraded = %d, want 200 (reads still serve)", resp.StatusCode)
	}
	if ready.Health != "degraded-readonly" {
		t.Fatalf("/readyz health = %q, want degraded-readonly", ready.Health)
	}
	status, out = doJSON(t, ts, http.MethodGet, "/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("/stats while degraded = %d", status)
	}
	var health string
	if err := json.Unmarshal(out["health"], &health); err != nil {
		t.Fatal(err)
	}
	if health != "degraded-readonly" {
		t.Fatalf("/stats health = %q, want degraded-readonly", health)
	}

	// A genuinely bad request is still the client's fault — but the
	// read-only gate runs first, so mutations see 503 before validation.
	// Validation errors on the READ path still 400.
	status, _ = doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"nope": "x"}})
	if status != http.StatusBadRequest {
		t.Fatalf("bad attribute on /match while degraded = %d, want 400", status)
	}
}

// TestServeShutdownDuringBatch is the drain regression (run under
// -race in CI): batch match requests in flight while the server shuts
// down must complete or be refused cleanly, the final snapshot must
// observe a quiesced engine, and the directory must recover.
func TestServeShutdownDuringBatch(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())

	// One known record to batch-match against.
	batch := make([]map[string]any, 0, 8)
	for i := 0; i < 8; i++ {
		batch = append(batch, map[string]any{"record": map[string]string{
			"fn": "Augusta", "ln": "Byron", "zip": "SW1Y", "phn": "555-0100"}})
	}
	body, err := json.Marshal(map[string]any{"batch": batch})
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the server until the shutdown refuses connections: each
	// goroutine exits on its first transport error (the closed
	// listener), so requests are genuinely in flight when Close runs.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := ts.Client().Post(ts.URL+"/match", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server closed: expected during shutdown
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("POST /match batch = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	// A writer too: inserts racing the shutdown must either land (and
	// be journaled) or be refused by the closed listener, never corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			b, _ := json.Marshal(map[string]any{"record": map[string]string{"fn": fmt.Sprintf("w%d", i)}})
			resp, err := ts.Client().Post(ts.URL+"/records", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()

	// Let traffic build, then shut down: Close waits for in-flight
	// handlers (the drain), then the final snapshot runs.
	time.Sleep(100 * time.Millisecond)
	ts.Close()
	srv.close()
	wg.Wait()

	// The final snapshot captured everything: no WAL suffix remains.
	if got := srv.store().BytesSinceSnapshot(); got != 0 {
		t.Fatalf("WAL bytes after final snapshot = %d, want 0", got)
	}
	// And the directory recovers.
	srv2, err := buildServer(cfg)
	if err != nil {
		t.Fatalf("restart after shutdown: %v", err)
	}
	defer srv2.close()
	if got, want := srv2.eng.Stream().Len(), srv.eng.Stream().Len(); got != want {
		t.Fatalf("recovered %d records, live had %d", got, want)
	}
}
