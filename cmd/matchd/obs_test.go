package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mdmatch/internal/obs"
)

// obsServer builds an instrumented durable matchd and wraps its routes
// in the same middleware main uses, so requests here exercise exactly
// the production handler chain.
func obsServer(t *testing.T, logBuf *bytes.Buffer) (*server, *httptest.Server, *obs.Registry) {
	t.Helper()
	cfg := testConfig()
	cfg.dataDir = t.TempDir()
	cfg.reg = obs.NewRegistry()
	if logBuf != nil {
		cfg.logger = slog.New(slog.NewJSONHandler(logBuf, nil))
	}
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	mux := srv.routes()
	httpm := obs.NewHTTPMetrics(cfg.reg, "matchd")
	routeOf := func(r *http.Request) string { _, p := mux.Handler(r); return p }
	ts := httptest.NewServer(httpm.Middleware(cfg.logger, routeOf, mux))
	t.Cleanup(ts.Close)
	return srv, ts, cfg.reg
}

// TestMetricsConformance is the end-to-end scrape check: drive real
// traffic through every layer (match, insert, snapshot), scrape
// GET /metrics, and validate the exposition with the strict conformance
// parser. Families from all four instrumented layers must be present
// and consistent with the traffic.
func TestMetricsConformance(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts, _ := obsServer(t, &logBuf)

	// Traffic: one insert (chase + WAL append), one match, one snapshot.
	rec := map[string]string{
		"cno": "4000123412341234", "ssn": "123-45-6789",
		"fn": "Augusta", "ln": "Byron", "street": "12 St James Square",
		"city": "London", "county": "Westminster", "zip": "SW1Y",
		"tel": "555-0100", "email": "ada@example.org",
		"gender": "F", "dob": "1815-12-10", "type": "visa",
	}
	if status, out := doJSON(t, ts, http.MethodPost, "/records", map[string]any{"record": rec}); status != http.StatusOK {
		t.Fatalf("POST /records = %d (%s)", status, out["error"])
	}
	query := map[string]string{
		"cno": "4000123412341234", "fn": "Augusta", "ln": "Byron",
		"street": "12 St James Square", "city": "London",
		"county": "Westminster", "zip": "SW1Y", "phn": "555-0100",
		"email": "ada@example.org", "gender": "F", "dob": "1815-12-10",
	}
	if status, _ := doJSON(t, ts, http.MethodPost, "/match", map[string]any{"record": query}); status != http.StatusOK {
		t.Fatalf("POST /match = %d", status)
	}
	if status, _ := doJSON(t, ts, http.MethodPost, "/snapshot", nil); status != http.StatusOK {
		t.Fatalf("POST /snapshot = %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("conformance: %v", err)
	}
	byName := map[string]obs.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	sample := func(name string) float64 {
		t.Helper()
		f, ok := byName[name]
		if !ok || len(f.Samples) == 0 {
			t.Fatalf("family %s missing from the exposition", name)
		}
		return f.Samples[0].Value
	}

	// One family per instrumented layer, plus the HTTP surface.
	if got := sample("mdmatch_engine_queries_total"); got < 1 {
		t.Fatalf("engine queries = %v", got)
	}
	if got := sample("mdmatch_stream_inserts_total"); got < 1 {
		t.Fatalf("stream inserts = %v", got)
	}
	if got := sample("mdmatch_store_appends_total"); got < 1 {
		t.Fatalf("store appends = %v", got)
	}
	if got := sample("mdmatch_store_snapshot_lsn"); got < 1 {
		t.Fatalf("snapshot lsn = %v", got)
	}
	if got := sample("mdmatch_store_snapshot_inflight"); got != 0 {
		t.Fatalf("snapshot inflight = %v after the snapshot completed", got)
	}
	if got := sample("mdmatch_runtime_heap_alloc_bytes"); got <= 0 {
		t.Fatalf("runtime heap alloc = %v", got)
	}
	// Identity families: build_info is a constant-1 gauge whose labels
	// carry the toolchain and VCS revision; process start time anchors
	// uptime math in dashboards.
	bi, ok := byName["mdmatch_build_info"]
	if !ok || len(bi.Samples) == 0 {
		t.Fatal("mdmatch_build_info missing from the exposition")
	}
	if bi.Samples[0].Value != 1 {
		t.Fatalf("build_info value = %v, want 1", bi.Samples[0].Value)
	}
	if bi.Samples[0].Labels["go_version"] == "" {
		t.Fatalf("build_info lacks go_version: %+v", bi.Samples[0].Labels)
	}
	if _, ok := bi.Samples[0].Labels["revision"]; !ok {
		t.Fatalf("build_info lacks revision: %+v", bi.Samples[0].Labels)
	}
	if got := sample("mdmatch_process_start_time_seconds"); got <= 0 {
		t.Fatalf("process start time = %v", got)
	}
	if got := sample("mdmatch_engine_indexed_records"); got < 150 {
		t.Fatalf("indexed records = %v (corpus is k=150)", got)
	}
	// Per-rule counters carry the rule label keyed by Σ index.
	ruleFam, ok := byName["mdmatch_stream_rule_examined_total"]
	if !ok || len(ruleFam.Samples) == 0 {
		t.Fatal("per-rule family missing")
	}
	if ruleFam.Samples[0].Labels["rule"] == "" {
		t.Fatalf("per-rule sample lacks the rule label: %+v", ruleFam.Samples[0])
	}
	// HTTP middleware families, fed by the requests above.
	var reqTotal float64
	reqFam := byName["matchd_http_requests_total"]
	routes := map[string]bool{}
	for _, s := range reqFam.Samples {
		reqTotal += s.Value
		routes[s.Labels["route"]] = true
	}
	if reqTotal < 3 {
		t.Fatalf("http requests total = %v", reqTotal)
	}
	if !routes["POST /match"] || !routes["POST /records"] {
		t.Fatalf("routes seen = %v", routes)
	}
	// Histograms from the push-side hooks observed the traffic.
	for _, name := range []string{
		"mdmatch_engine_match_duration_seconds",
		"mdmatch_stream_insert_duration_seconds",
		"mdmatch_store_append_duration_seconds",
		"matchd_http_request_duration_seconds",
	} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("histogram %s missing", name)
		}
		var count float64
		for _, s := range f.Samples {
			if strings.HasSuffix(s.Name, "_count") {
				count += s.Value
			}
		}
		if count < 1 {
			t.Fatalf("histogram %s observed nothing", name)
		}
	}

	// Each request logged one structured line with its request id.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	sawRequest := 0
	for _, line := range lines {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			continue
		}
		if entry["msg"] == "request" {
			sawRequest++
			if entry["request_id"] == "" || entry["route"] == "" {
				t.Fatalf("log entry missing fields: %v", entry)
			}
		}
	}
	if sawRequest < 4 {
		t.Fatalf("structured request lines = %d, want >= 4", sawRequest)
	}
}

// TestReadiness pins the liveness/readiness split: /healthz is up from
// the first instant, data endpoints and /readyz gate on build
// completion, and /readyz reports replay progress fields.
func TestReadiness(t *testing.T) {
	// Before build: the shell serves health but 503s data requests.
	shell := newServer(testConfig())
	ts := httptest.NewServer(shell.routes())
	defer ts.Close()
	if status, _ := doJSON(t, ts, http.MethodGet, "/healthz", nil); status != http.StatusOK {
		t.Fatalf("/healthz before build = %d", status)
	}
	status, out := doJSON(t, ts, http.MethodGet, "/readyz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before build = %d", status)
	}
	var ready bool
	if err := json.Unmarshal(out["ready"], &ready); err != nil || ready {
		t.Fatalf("readyz body before build: %v", out)
	}
	if status, _ := doJSON(t, ts, http.MethodGet, "/stats", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("/stats before build = %d", status)
	}
	if status, _ := doJSON(t, ts, http.MethodPost, "/match", map[string]any{"values": []string{"x"}}); status != http.StatusServiceUnavailable {
		t.Fatalf("/match before build = %d", status)
	}

	// After build: ready, and a durable restart reports replay progress.
	dir := t.TempDir()
	cfg := testConfig()
	cfg.dataDir = dir
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv.routes())
	status, out = doJSON(t, ts2, http.MethodGet, "/readyz", nil)
	if status != http.StatusOK {
		t.Fatalf("/readyz after build = %d", status)
	}
	rec := map[string]string{"fn": "Solo", "ln": "Record", "zip": "00001"}
	if status, out := doJSON(t, ts2, http.MethodPost, "/records", map[string]any{"record": rec}); status != http.StatusOK {
		t.Fatalf("POST /records = %d (%s)", status, out["error"])
	}
	ts2.Close()
	srv.close()

	// Restart over the same directory: recovery replays the WAL (no
	// snapshot was taken, so the insert above replays) and /readyz must
	// expose how far it got.
	srv2, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.close()
	ts3 := httptest.NewServer(srv2.routes())
	defer ts3.Close()
	status, out = doJSON(t, ts3, http.MethodGet, "/readyz", nil)
	if status != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d", status)
	}
	var applied, target float64
	if err := json.Unmarshal(out["replay_applied"], &applied); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out["replay_target"], &target); err != nil {
		t.Fatal(err)
	}
	if target < 1 || applied != target {
		t.Fatalf("replay progress = %v/%v, want complete and >= 1", applied, target)
	}
}
