// Command matchd serves record matching over HTTP: the library's
// compile-once/serve-many split made runnable. At startup it generates a
// credit/billing corpus (internal/gen), derives the top quality RCKs
// from the 7 card-holder MDs (findRCKs, Section 5), compiles them into
// an engine plan with RCK-style blocking keys, and indexes the credit
// side. It then answers matching queries for billing-shaped records.
//
// The credit side is additionally deduplicated ONLINE: an incremental
// enforcement engine (internal/stream) chases the self-match dedup
// rules (gen.DedupMDs) as records arrive, so POST /records returns the
// new record's cluster and the rules its arrival fired, and
// GET /clusters/{id} reports a record's current cluster and resolved
// values. Enforcement cannot be undone, so with the enforcer attached
// record ids are insert-once and DELETE only un-indexes a record from
// the match side; its cluster history stays.
//
// With -data-dir the service is DURABLE (internal/store): every
// mutation is written ahead to a checksummed WAL, snapshots are taken
// in the background once enough WAL bytes accumulate (and on demand via
// POST /snapshot), and a restart recovers the exact pre-crash state —
// newest snapshot plus the WAL suffix replayed in original insertion
// order — instead of regenerating and re-chasing the corpus. On SIGTERM
// the server drains in-flight requests, takes a final snapshot and
// closes the log.
//
// The process is OBSERVABLE (internal/obs): the listener comes up
// immediately and GET /readyz answers 503 — reporting recovery replay
// progress — until the state is rebuilt, GET /metrics serves the full
// instrument set (HTTP surface, match engine, chase, durability) in
// Prometheus text exposition format, every request carries an
// X-Request-Id and emits one structured log line (-log-format text or
// json), and -debug-addr exposes net/http/pprof on a side listener.
//
//	matchd -addr :8080 -k 1000 -data-dir /var/lib/matchd -log-format json
//
// Endpoints (JSON in/out unless noted):
//
//	POST   /match         {"record": {"fn": "...", ...}} or {"values": [...]}
//	                      or {"batch": [{...}, ...]} for a worker-pool batch
//	POST   /records       add a credit record; returns cluster + applied rules
//	DELETE /records/{id}  un-index a credit record (cluster history stays)
//	GET    /clusters/{id} a record's cluster, members and resolved values
//	POST   /snapshot      write a snapshot now (requires -data-dir)
//	GET    /stats         engine + enforcement + store counters, uptime
//	GET    /healthz       liveness (the process is up)
//	GET    /readyz        readiness (state recovered; 503 + replay progress before)
//	GET    /metrics       Prometheus text exposition
//
// Request bodies are capped at -max-body-bytes (413 beyond it). See
// docs/ARCHITECTURE.md for a curl walkthrough including a real
// kill-and-recover transcript and the metrics name table.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/engine"
	"mdmatch/internal/fault"
	"mdmatch/internal/gen"
	"mdmatch/internal/obs"
	"mdmatch/internal/retry"
	"mdmatch/internal/schema"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
	"mdmatch/internal/trace"
)

func main() {
	var cfg config
	var logFormat, logLevel string
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.k, "k", 1000, "card holders in the generated demo corpus")
	flag.Int64Var(&cfg.seed, "seed", 1, "corpus generation seed")
	flag.IntVar(&cfg.m, "m", 5, "number of RCKs to derive and serve")
	flag.IntVar(&cfg.workers, "workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.chaseWorkers, "chase-workers", 0, "stream chase worker count (0 = GOMAXPROCS, 1 = serial); any count enforces identically")
	flag.IntVar(&cfg.shards, "shards", 0, "index/store shard count (0 = default)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durability directory (empty = in-memory only)")
	flag.Int64Var(&cfg.maxBody, "max-body-bytes", 1<<20, "request body cap (413 beyond it)")
	flag.Int64Var(&cfg.snapBytes, "snapshot-wal-bytes", 8<<20, "WAL bytes that trigger a background snapshot")
	flag.BoolVar(&cfg.noSync, "no-fsync", false, "skip the per-append WAL fsync (faster, loses a tail on OS crash)")
	flag.StringVar(&logFormat, "log-format", "text", "log output format: text or json")
	flag.StringVar(&logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "side listener for net/http/pprof (empty = disabled)")
	flag.IntVar(&cfg.slowTraceMS, "slow-trace-ms", 50, "slow-trace retention threshold in milliseconds; every request at least this slow is kept for GET /debug/traces (0 = none)")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1000, "additionally keep a deterministic 1-in-N sample of fast request traces (0 = none)")
	flag.IntVar(&cfg.traceCapacity, "trace-capacity", 256, "retained completed traces across the ring")
	flag.BoolVar(&cfg.exemplars, "exemplars", false, "attach OpenMetrics trace_id exemplars to the HTTP latency histogram buckets")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "admitted /match + /records requests in flight before new ones get 429 (0 = unlimited)")
	flag.IntVar(&cfg.queueHighWatermark, "queue-high-watermark", 0, "engine+stream queue depth at which new data requests get 503 (0 = disabled)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "bound on the SIGTERM drain; on expiry (or a second signal) the final snapshot is aborted and the process exits 1")
	var faultSpecs string
	flag.StringVar(&faultSpecs, "fault", "", "comma-separated durability fault injections, e.g. sync@2:eio,write@5+:enospc (testing; see internal/fault)")
	flag.Parse()

	if faultSpecs != "" {
		plan := fault.NewPlan()
		for _, spec := range strings.Split(faultSpecs, ",") {
			inj, err := fault.ParseSpec(strings.TrimSpace(spec))
			if err != nil {
				fmt.Fprintln(os.Stderr, "matchd: -fault:", err)
				os.Exit(1)
			}
			plan.Inject(inj)
		}
		cfg.faultPlan = plan
	}

	logger, err := newLogger(logFormat, logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	cfg.logger = logger
	cfg.reg = obs.NewRegistry()

	// The listener comes up BEFORE the state is built: /healthz, /readyz
	// and /metrics answer immediately, the data endpoints 503 until the
	// corpus is generated (or the previous state recovered). A restart
	// with a large WAL is exactly when an orchestrator needs /readyz to
	// report progress instead of timing out on a dead port.
	srv := newServer(cfg)
	mux := srv.routes()
	httpm := obs.NewHTTPMetrics(cfg.reg, "matchd")
	if srv.tracer != nil {
		httpm.WithTracer(srv.tracer, cfg.exemplars)
	}
	routeOf := func(r *http.Request) string { _, pattern := mux.Handler(r); return pattern }
	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           httpm.Middleware(logger, routeOf, mux),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if cfg.debugAddr != "" {
		// The blank net/http/pprof import registers on the default mux,
		// which only this side listener serves. Header/idle timeouts keep
		// a stuck client from pinning a connection forever; deliberately
		// no WriteTimeout — pprof's profile?seconds=N streams for longer
		// than any fixed cap.
		dbg := &http.Server{
			Addr:              cfg.debugAddr,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			logger.Info("debug listener (pprof)", "addr", cfg.debugAddr)
			if err := dbg.ListenAndServe(); err != nil {
				logger.Error("debug listener", "err", err)
			}
		}()
	}

	buildDone := make(chan error, 1)
	go func() {
		err := srv.build()
		if err == nil {
			logger.Info("serving", "plan", srv.eng.Plan().String(),
				"records", srv.eng.Len(), "addr", cfg.addr)
		}
		buildDone <- err
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	for {
		select {
		case err := <-buildDone:
			if err != nil {
				logger.Error("startup failed", "err", err)
				hs.Close()
				os.Exit(1)
			}
			buildDone = nil // built; a nil channel never fires again
		case err := <-errCh:
			srv.close()
			logger.Error("server", "err", err)
			os.Exit(1)
		case <-ctx.Done():
			stop()
			srv.enterDraining()
			logger.Info("signal received, draining", "timeout", cfg.drainTimeout)
			// Re-arm signal delivery: a SECOND signal during the drain
			// aborts it (a wedged disk must not hang shutdown forever).
			abort := make(chan os.Signal, 1)
			signal.Notify(abort, os.Interrupt, syscall.SIGTERM)
			if buildDone != nil {
				// Let the build finish (or fail) before quiescing: close()
				// snapshots through the engine the build is constructing.
				if err := <-buildDone; err != nil {
					logger.Error("startup failed", "err", err)
					os.Exit(1)
				}
			}
			done := make(chan struct{})
			go func() {
				sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
				defer cancel()
				// Shutdown waits for in-flight handlers — including MatchBatch
				// calls and their worker pools, which join before the handler
				// returns — so the final snapshot below sees a quiesced engine.
				if err := hs.Shutdown(sctx); err != nil {
					logger.Warn("drain", "err", err)
				}
				srv.close()
				close(done)
			}()
			watchdog := time.NewTimer(cfg.drainTimeout)
			defer watchdog.Stop()
			select {
			case <-done:
				logger.Info("bye")
				return
			case <-abort:
				logger.Error("second signal during drain: aborting final snapshot")
				os.Exit(1)
			case <-watchdog.C:
				logger.Error("drain timeout exceeded: aborting final snapshot", "timeout", cfg.drainTimeout)
				os.Exit(1)
			}
		}
	}
}

// newLogger builds the process logger from the -log-format and
// -log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// config collects the service parameters (flag values, and the knobs
// tests turn directly).
type config struct {
	addr    string
	k       int
	seed    int64
	m       int
	workers int
	shards  int
	// chaseWorkers is the deterministic parallel chase's worker count
	// (stream.WithWorkers); 0 selects GOMAXPROCS. Every count produces
	// the identical instance, clusters and counters.
	chaseWorkers int
	dataDir      string
	maxBody      int64
	snapBytes    int64
	noSync       bool
	debugAddr    string

	// Tracing: slowTraceMS is the tail-retention threshold for completed
	// request traces, traceSample keeps a deterministic 1-in-N sample of
	// the fast ones, traceCapacity bounds the ring, and exemplars links
	// the latency histogram's buckets to trace ids on /metrics. A tracer
	// is built only when reg is set (tracing rides the obs middleware).
	slowTraceMS   int
	traceSample   int
	traceCapacity int
	exemplars     bool

	// Admission control: maxInflight bounds admitted /match + /records
	// requests (0 = unlimited; beyond it 429 + Retry-After), and
	// queueHighWatermark sheds new data requests with 503 while the
	// engine's in-flight batches plus the enforcer's insert queue are at
	// or above it (0 = disabled).
	maxInflight        int
	queueHighWatermark int
	// drainTimeout bounds the SIGTERM drain (requests + final snapshot).
	drainTimeout time.Duration
	// faultPlan, when set, wraps the store's filesystem in the
	// deterministic fault injector (-fault flag; tests arm it directly).
	faultPlan *fault.Plan

	// reg, when set, instruments every layer (engine, stream, store) on
	// that registry; nil builds an uninstrumented server (what most unit
	// tests want, and what the overhead benchmark compares against).
	reg    *obs.Registry
	logger *slog.Logger // nil = slog.Default()
}

// buildServer derives rules, compiles the plan, opens the durability
// store (when configured) and populates the index, synchronously. main
// instead calls newServer + build on a goroutine so the listener can
// answer /readyz during a long recovery; tests use this one-shot form.
func buildServer(cfg config) (*server, error) {
	srv := newServer(cfg)
	if err := srv.build(); err != nil {
		return nil, err
	}
	return srv, nil
}

// newServer allocates the serving shell: routes can be registered and
// health endpoints answered immediately; the data endpoints 503 until
// build marks the server ready.
func newServer(cfg config) *server {
	lg := cfg.logger
	if lg == nil {
		lg = slog.Default()
	}
	s := &server{
		cfg: cfg, log: lg, started: time.Now(),
		maxBody: cfg.maxBody, snapBytes: cfg.snapBytes,
	}
	if cfg.reg != nil {
		s.hm = obs.NewHealthMetrics(cfg.reg, func() float64 { return float64(s.health.Load()) })
		obs.AttachRuntime(cfg.reg)
		if cfg.slowTraceMS > 0 || cfg.traceSample > 0 {
			s.tracer = trace.New(trace.Options{
				Slow:     time.Duration(cfg.slowTraceMS) * time.Millisecond,
				SampleN:  cfg.traceSample,
				Capacity: cfg.traceCapacity,
			})
		}
	}
	return s
}

// build constructs the serving state: a fresh data directory — or none
// — loads the generated corpus as one batch; a non-empty one recovers
// the previous process's exact state instead. On success the server is
// marked ready.
func (s *server) build() error {
	cfg := s.cfg
	ds, err := gen.Generate(genConfig(cfg))
	if err != nil {
		return err
	}
	target := gen.Target(ds.Ctx)
	sigma := gen.HolderMDs(ds.Ctx)
	cm := core.DefaultCostModel()
	cm.Lt = ds.LtStats()
	keys, err := core.FindRCKs(ds.Ctx, sigma, target, cfg.m+4, cm)
	if err != nil {
		return err
	}
	keys = core.PruneSubsumed(keys)
	if len(keys) > cfg.m {
		keys = keys[:cfg.m]
	}
	specs := []blocking.KeySpec{
		blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode),
		blocking.NewKeySpec(core.P("tel", "phn")),
		blocking.NewKeySpec(core.P("fn", "fn"), core.P("dob", "dob")).
			WithEncoder(0, blocking.SoundexEncode),
	}
	plan, err := engine.Compile(ds.Ctx, keys, specs)
	if err != nil {
		return err
	}
	dedupCtx, err := schema.NewPair(ds.Credit.Rel, ds.Credit.Rel)
	if err != nil {
		return err
	}
	streamOpts := []stream.Option{
		stream.ClusterRules(gen.DedupClusterRules()...),
		stream.WithWorkers(cfg.chaseWorkers),
		stream.WithLogger(s.log),
	}
	if cfg.reg != nil {
		streamOpts = append(streamOpts, stream.WithObserver(obs.NewStreamObserver(cfg.reg)))
	}
	enf, err := stream.New(dedupCtx, gen.DedupMDs(dedupCtx), streamOpts...)
	if err != nil {
		return err
	}
	opts := []engine.Option{
		engine.WithWorkers(cfg.workers), engine.WithShards(cfg.shards), engine.WithStream(enf),
	}
	if cfg.reg != nil {
		opts = append(opts, engine.WithObserver(obs.NewEngineObserver(cfg.reg)))
	}
	var st *store.Store
	if cfg.dataDir != "" {
		sopts := []store.Option{store.WithLogger(s.log)}
		if cfg.noSync {
			sopts = append(sopts, store.WithNoSync())
		}
		if cfg.reg != nil {
			sopts = append(sopts, store.WithObserver(obs.NewStoreObserver(cfg.reg)))
		}
		if cfg.faultPlan != nil {
			if s.hm != nil {
				cfg.faultPlan.OnFault(func(op fault.Op) {
					s.hm.FaultInjected.With(string(op)).Inc()
				})
			}
			sopts = append(sopts, store.WithFS(fault.Wrap(store.OSFS{}, cfg.faultPlan)))
		}
		st, err = store.Open(cfg.dataDir, engine.Fingerprint(plan, enf), sopts...)
		if err != nil {
			return err
		}
		// Published before recovery starts so /readyz can report replay
		// progress while engine.New is still chasing the WAL suffix.
		s.stp.Store(st)
		opts = append(opts, engine.WithStore(st))
	}
	fresh := st == nil || st.Empty()
	eng, err := engine.New(plan, opts...)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	if fresh {
		if err := eng.Load(ds.Credit); err != nil {
			if st != nil {
				st.Close()
			}
			return err
		}
	} else {
		s.log.Info("recovered",
			"records", enf.Len(), "clusters", enf.Stats().Clusters,
			"dir", cfg.dataDir, "snapshot_lsn", st.SnapshotLSN(), "lsn", st.LSN())
	}
	s.eng, s.ctx = eng, ds.Ctx
	maxID := -1
	for _, t := range enf.Instance().Tuples {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	s.nextID.Store(int64(maxID))
	if st != nil && s.snapBytes > 0 {
		s.stopSnap = make(chan struct{})
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	s.ready.Store(true)
	return nil
}

func genConfig(cfg config) gen.Config {
	g := gen.DefaultConfig(cfg.k)
	g.Seed = cfg.seed
	return g
}

type server struct {
	cfg     config
	log     *slog.Logger
	eng     *engine.Engine
	ctx     schema.Pair
	nextID  atomic.Int64
	started time.Time

	// ready flips once build completes; eng/ctx/nextID are written
	// before it and only read by handlers behind it. The store pointer
	// is separate (and atomic) because /readyz reads it DURING build to
	// report recovery replay progress.
	ready atomic.Bool
	stp   atomic.Pointer[store.Store]

	// health is the degraded-mode state machine (healthState values);
	// inflightReqs counts admitted requests against -max-inflight; hm is
	// the robustness metric set (nil when uninstrumented). See health.go.
	health       atomic.Int32
	inflightReqs atomic.Int64
	hm           *obs.HealthMetrics

	// tracer collects completed request traces for /debug/traces (nil
	// when tracing is off or the server is uninstrumented).
	tracer *trace.Tracer

	maxBody   int64
	snapBytes int64
	stopSnap  chan struct{}
	snapWG    sync.WaitGroup
	closeOnce sync.Once
}

// store returns the durability store, or nil when not durable (or not
// yet opened).
func (s *server) store() *store.Store { return s.stp.Load() }

// snapshotLoop is the background snapshot trigger: once the WAL has
// accumulated snapBytes since the last snapshot, capture one (bounding
// the replay debt a crash would pay). A failed snapshot retries on a
// capped exponential backoff instead of hammering a misbehaving disk
// every tick — and never wedges the loop: the ticker keeps running, so
// stop (and the WAL-failure health check) stay responsive throughout.
func (s *server) snapshotLoop() {
	defer s.snapWG.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	bo := retry.Policy{Initial: 2 * time.Second, Max: time.Minute, Seed: 1}.Backoff()
	var nextTry time.Time
	for {
		select {
		case <-s.stopSnap:
			return
		case <-tick.C:
			st := s.store()
			// The snapshotter doubles as the degraded-mode watchdog: a
			// WAL failure latched outside the request path (segment
			// rotation during a snapshot) still flips serving read-only.
			if err := st.Failed(); err != nil {
				s.enterDegraded(context.Background(), err)
			}
			if st.BytesSinceSnapshot() < s.snapBytes {
				continue
			}
			if !nextTry.IsZero() && time.Now().Before(nextTry) {
				continue // backing off after a failure
			}
			if lsn, err := s.eng.Snapshot(); err != nil {
				wait := bo.Next()
				nextTry = time.Now().Add(wait)
				s.log.Error("background snapshot failed; backing off",
					"err", err, "retry_in", wait, "attempt", bo.Attempt())
			} else {
				bo.Reset()
				nextTry = time.Time{}
				s.log.Info("background snapshot", "lsn", lsn)
			}
		}
	}
}

// close quiesces durability: stop the background snapshotter, take a
// final snapshot (the caller has already drained in-flight handlers)
// and close the WAL. Safe to call more than once.
func (s *server) close() {
	s.closeOnce.Do(func() {
		if s.stopSnap != nil {
			close(s.stopSnap)
			s.snapWG.Wait()
		}
		st := s.store()
		if st == nil {
			return
		}
		if s.ready.Load() {
			if lsn, err := s.eng.Snapshot(); err != nil {
				s.log.Error("final snapshot", "err", err)
			} else {
				s.log.Info("final snapshot", "lsn", lsn)
			}
		}
		if err := st.Close(); err != nil {
			s.log.Error("closing store", "err", err)
		}
	})
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /match", s.whenReady(s.admit(s.limited(s.handleMatch))))
	mux.HandleFunc("POST /records", s.whenReady(s.admit(s.mutating(s.limited(s.handleAddRecord)))))
	mux.HandleFunc("DELETE /records/{id}", s.whenReady(s.mutating(s.handleDeleteRecord)))
	mux.HandleFunc("GET /clusters/{id}", s.whenReady(s.handleCluster))
	mux.HandleFunc("POST /snapshot", s.whenReady(s.handleSnapshot))
	mux.HandleFunc("GET /stats", s.whenReady(s.handleStats))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.reg != nil {
		mux.Handle("GET /metrics", s.cfg.reg.Handler())
	}
	if s.tracer != nil {
		mux.HandleFunc("GET /debug/traces", s.handleTraces)
		mux.HandleFunc("GET /debug/traces/{id}", s.handleTrace)
	}
	return mux
}

// handleTraces lists the retained completed traces, newest first:
// slow traces (at least -slow-trace-ms) plus the deterministic 1-in-N
// sample, as frozen span trees.
func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.tracer.Traces()})
}

// handleTrace fetches one retained trace by trace id (the id the
// response traceparent header and the metrics exemplars carry).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.tracer.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no retained trace %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// wantExplain reports whether the request asked for provenance
// (?explain=1 or ?explain=true).
func wantExplain(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true":
		return true
	}
	return false
}

// whenReady gates a data handler on startup completion: 503 (with
// Retry-After) until the corpus is built or the previous state
// recovered. /healthz, /readyz and /metrics stay un-gated.
func (s *server) whenReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errors.New("starting: state not yet recovered"))
			return
		}
		h(w, r)
	}
}

// readyResponse is the /readyz body. Replay progress is meaningful only
// while a durable restart is recovering: applied climbs toward target
// as the WAL suffix replays (both 0 on a fresh build). Health reports
// the degraded-mode state machine: "degraded-readonly" still answers
// 200 — the daemon serves reads and should keep receiving them — while
// "draining" answers 503 so balancers stop routing here.
type readyResponse struct {
	Ready         bool   `json:"ready"`
	Health        string `json:"health"`
	ReplayApplied uint64 `json:"replay_applied"`
	ReplayTarget  uint64 `json:"replay_target"`
}

func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	hs := s.healthState()
	res := readyResponse{Ready: s.ready.Load(), Health: hs.String()}
	if st := s.store(); st != nil {
		res.ReplayApplied, res.ReplayTarget = st.ReplayProgress()
	}
	status := http.StatusOK
	if !res.Ready || hs == healthDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, res)
}

// limited caps the request body at maxBody bytes; decodeBody turns the
// cap violation into a 413.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.maxBody > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		h(w, r)
	}
}

// decodeBody decodes the JSON request body into v, writing the
// appropriate error response (413 for an oversized body, 400 for
// malformed JSON) and reporting whether decoding succeeded.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// recordPayload carries one record, either positional (values) or named
// (record); named form fills unmentioned attributes with "".
type recordPayload struct {
	ID     *int              `json:"id,omitempty"`
	Values []string          `json:"values,omitempty"`
	Record map[string]string `json:"record,omitempty"`
}

// resolve turns the payload into positional values of rel.
func (p *recordPayload) resolve(rel *schema.Relation) ([]string, error) {
	switch {
	case p.Values != nil && p.Record != nil:
		return nil, fmt.Errorf("give either values or record, not both")
	case p.Values != nil:
		if len(p.Values) != rel.Arity() {
			return nil, fmt.Errorf("%s expects %d values, got %d", rel.Name(), rel.Arity(), len(p.Values))
		}
		return p.Values, nil
	case p.Record != nil:
		vals := make([]string, rel.Arity())
		for attr, v := range p.Record {
			i, ok := rel.Index(attr)
			if !ok {
				return nil, fmt.Errorf("%s has no attribute %q", rel.Name(), attr)
			}
			vals[i] = v
		}
		return vals, nil
	default:
		return nil, fmt.Errorf("missing values or record")
	}
}

// matchPayload is the /match request: one record, or a batch.
type matchPayload struct {
	recordPayload
	Batch []recordPayload `json:"batch,omitempty"`
}

type matchResponse struct {
	Matches    []int `json:"matches"`
	Candidates int   `json:"candidates"`
	Compared   int   `json:"compared"`
}

func toMatchResponse(res engine.Result) matchResponse {
	matches := res.Matches
	if matches == nil {
		matches = []int{}
	}
	return matchResponse{Matches: matches, Candidates: res.Candidates, Compared: res.Compared}
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var p matchPayload
	if !s.decodeBody(w, r, &p) {
		return
	}
	explain := wantExplain(r)
	if p.Batch != nil {
		if explain {
			writeError(w, http.StatusBadRequest, fmt.Errorf("explain supports a single record, not a batch"))
			return
		}
		if p.Values != nil || p.Record != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("give either batch or a single record, not both"))
			return
		}
		batch := make([][]string, len(p.Batch))
		for i := range p.Batch {
			vals, err := p.Batch[i].resolve(s.ctx.Right)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("batch[%d]: %w", i, err))
				return
			}
			batch[i] = vals
		}
		// The request context rides into the worker pool: when the client
		// hangs up mid-batch, the pool stops claiming queries instead of
		// matching the remainder for nobody.
		results, err := s.eng.MatchBatchCtx(r.Context(), batch)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nobody to answer
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out := make([]matchResponse, len(results))
		for i, res := range results {
			out[i] = toMatchResponse(res)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
		return
	}
	vals, err := p.resolve(s.ctx.Right)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if explain {
		ex, err := s.eng.MatchExplainCtx(r.Context(), vals)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nobody to answer
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, ex)
		return
	}
	res, err := s.eng.MatchOneCtx(r.Context(), vals)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody to answer
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toMatchResponse(res))
}

func (s *server) handleAddRecord(w http.ResponseWriter, r *http.Request) {
	var p recordPayload
	if !s.decodeBody(w, r, &p) {
		return
	}
	vals, err := p.resolve(s.ctx.Left)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var id int
	if p.ID != nil {
		id = *p.ID
		// Keep the allocator ahead of explicit ids.
		for {
			cur := s.nextID.Load()
			if int64(id) <= cur || s.nextID.CompareAndSwap(cur, int64(id)) {
				break
			}
		}
	} else {
		id = int(s.nextID.Add(1))
	}
	ctx := r.Context()
	var ex *stream.Explain
	if wantExplain(r) {
		ex = stream.NewExplain(len(s.eng.Stream().Sigma()))
		ctx = stream.WithTraceSink(ctx, ex)
	}
	res, err := s.eng.AddClusteredCtx(ctx, id, vals)
	if err != nil {
		// A journal failure flips the daemon to read-only serving: the
		// record was valid but could not be made durable, and the store
		// refuses every later append anyway — reads keep answering, the
		// client gets 503 + Retry-After against a recovered process.
		if s.degradeOnJournalFailure(ctx, w, err) {
			return
		}
		if r.Context().Err() != nil {
			return // client gone before the insert was journaled
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	applied := res.AppliedMDs
	if applied == nil {
		applied = []int{}
	}
	writeJSON(w, http.StatusOK, addResponse{
		ID:           id,
		Cluster:      res.Cluster,
		AppliedMDs:   applied,
		Applications: res.Applications,
		Passes:       res.Passes,
		Explain:      ex,
	})
}

// addResponse reports an ingested record: its id, the dedup cluster
// enforcement put it in, and the chase work its arrival caused. With
// ?explain=1, Explain carries the full chase provenance — the per-rule
// candidate funnel and the firing sequence with cell-level before/after
// values, in commit order (identical at any -chase-workers count).
type addResponse struct {
	ID           int             `json:"id"`
	Cluster      int             `json:"cluster"`
	AppliedMDs   []int           `json:"applied_mds"`
	Applications int             `json:"applications"`
	Passes       int             `json:"passes"`
	Explain      *stream.Explain `json:"explain,omitempty"`
}

// clusterResponse reports a record's cluster and its current (resolved)
// values: enforcement may have grown them since ingestion. With
// ?explain=1, Trail lists the committed identity-rule links that built
// the cluster, in commit order (rule -1 = restored from a snapshot).
type clusterResponse struct {
	Cluster int                `json:"cluster"`
	Size    int                `json:"size"`
	Members []int              `json:"members"`
	Record  map[string]string  `json:"record"`
	Trail   []stream.LinkEvent `json:"trail,omitempty"`
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	enf := s.eng.Stream()
	cl, ok := enf.ClusterOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record %d", id))
		return
	}
	vals, _ := enf.Record(id)
	rec := make(map[string]string, len(vals))
	for i, name := range enf.Relation().AttrNames() {
		rec[name] = vals[i]
	}
	resp := clusterResponse{
		Cluster: cl.ID, Size: len(cl.Members), Members: cl.Members, Record: rec,
	}
	if wantExplain(r) {
		resp.Trail, _ = enf.ClusterTrail(id)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	removed, err := s.eng.RemoveLogged(id)
	if err != nil {
		// A failed removal journal is the same latched WAL failure as a
		// failed insert journal: flip read-only and say so.
		s.enterDegraded(r.Context(), err)
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("durability failed; serving read-only: journaling removal: %v", err))
		return
	}
	if !removed {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record %d", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"removed": id})
}

// snapshotResponse reports an on-demand snapshot.
type snapshotResponse struct {
	LSN          uint64 `json:"lsn"`
	SnapshotLSN  uint64 `json:"snapshot_lsn"`
	WALBytesLeft int64  `json:"wal_bytes_since_snapshot"`
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	st := s.store()
	if st == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no data directory configured (-data-dir)"))
		return
	}
	lsn, err := s.eng.SnapshotCtx(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		LSN: lsn, SnapshotLSN: st.SnapshotLSN(), WALBytesLeft: st.BytesSinceSnapshot(),
	})
}

// storeStats is the /stats durability section.
type storeStats struct {
	Dir                   string `json:"dir"`
	LSN                   uint64 `json:"lsn"`
	SnapshotLSN           uint64 `json:"snapshot_lsn"`
	WALBytesSinceSnapshot int64  `json:"wal_bytes_since_snapshot"`
}

type statsResponse struct {
	engine.Stats
	ReductionRatio float64      `json:"reduction_ratio"`
	Plan           string       `json:"plan"`
	Workers        int          `json:"workers"`
	ChaseWorkers   int          `json:"chase_workers"`
	UptimeSeconds  float64      `json:"uptime_seconds"`
	Health         string       `json:"health"`
	Stream         stream.Stats `json:"stream"`
	Store          *storeStats  `json:"store,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	resp := statsResponse{
		Stats:          st,
		ReductionRatio: st.ReductionRatio(),
		Plan:           s.eng.Plan().String(),
		Workers:        s.eng.Workers(),
		ChaseWorkers:   s.eng.Stream().Workers(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Health:         s.healthState().String(),
		Stream:         s.eng.Stream().Stats(),
	}
	if ds := s.store(); ds != nil {
		resp.Store = &storeStats{
			Dir:                   ds.Dir(),
			LSN:                   ds.LSN(),
			SnapshotLSN:           ds.SnapshotLSN(),
			WALBytesSinceSnapshot: ds.BytesSinceSnapshot(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encoding response", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
