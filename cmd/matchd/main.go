// Command matchd serves record matching over HTTP: the library's
// compile-once/serve-many split made runnable. At startup it generates a
// credit/billing corpus (internal/gen), derives the top quality RCKs
// from the 7 card-holder MDs (findRCKs, Section 5), compiles them into
// an engine plan with RCK-style blocking keys, and indexes the credit
// side. It then answers matching queries for billing-shaped records.
//
// The credit side is additionally deduplicated ONLINE: an incremental
// enforcement engine (internal/stream) chases the self-match dedup
// rules (gen.DedupMDs) as records arrive, so POST /records returns the
// new record's cluster and the rules its arrival fired, and
// GET /clusters/{id} reports a record's current cluster and resolved
// values. Enforcement cannot be undone, so with the enforcer attached
// record ids are insert-once and DELETE only un-indexes a record from
// the match side; its cluster history stays.
//
//	matchd -addr :8080 -k 1000
//
// Endpoints (JSON in/out):
//
//	POST   /match         {"record": {"fn": "...", ...}} or {"values": [...]}
//	POST   /records       add a credit record; returns cluster + applied rules
//	DELETE /records/{id}  un-index a credit record (cluster history stays)
//	GET    /clusters/{id} a record's cluster, members and resolved values
//	GET    /stats         engine + enforcement counters, reduction ratio, uptime
//	GET    /healthz       liveness
//
// See docs/ARCHITECTURE.md for a curl walkthrough.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/engine"
	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
	"mdmatch/internal/stream"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		k       = flag.Int("k", 1000, "card holders in the generated demo corpus")
		seed    = flag.Int64("seed", 1, "corpus generation seed")
		m       = flag.Int("m", 5, "number of RCKs to derive and serve")
		workers = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "index/store shard count (0 = default)")
	)
	flag.Parse()
	srv, err := buildServer(*k, *seed, *m, *workers, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
	log.Printf("matchd: %s", srv.eng.Plan())
	log.Printf("matchd: indexed %d credit records, serving on %s", srv.eng.Len(), *addr)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(hs.ListenAndServe())
}

// buildServer derives rules, compiles the plan and loads the index.
func buildServer(k int, seed int64, m, workers, shards int) (*server, error) {
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	ds, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	target := gen.Target(ds.Ctx)
	sigma := gen.HolderMDs(ds.Ctx)
	cm := core.DefaultCostModel()
	cm.Lt = ds.LtStats()
	keys, err := core.FindRCKs(ds.Ctx, sigma, target, m+4, cm)
	if err != nil {
		return nil, err
	}
	keys = core.PruneSubsumed(keys)
	if len(keys) > m {
		keys = keys[:m]
	}
	specs := []blocking.KeySpec{
		blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode),
		blocking.NewKeySpec(core.P("tel", "phn")),
		blocking.NewKeySpec(core.P("fn", "fn"), core.P("dob", "dob")).
			WithEncoder(0, blocking.SoundexEncode),
	}
	plan, err := engine.Compile(ds.Ctx, keys, specs)
	if err != nil {
		return nil, err
	}
	dedupCtx, err := schema.NewPair(ds.Credit.Rel, ds.Credit.Rel)
	if err != nil {
		return nil, err
	}
	enf, err := stream.New(dedupCtx, gen.DedupMDs(dedupCtx),
		stream.ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(plan, engine.WithWorkers(workers), engine.WithShards(shards),
		engine.WithStream(enf))
	if err != nil {
		return nil, err
	}
	if err := eng.Load(ds.Credit); err != nil {
		return nil, err
	}
	srv := &server{eng: eng, ctx: ds.Ctx, started: time.Now()}
	maxID := -1
	for _, t := range ds.Credit.Tuples {
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	srv.nextID.Store(int64(maxID))
	return srv, nil
}

type server struct {
	eng     *engine.Engine
	ctx     schema.Pair
	nextID  atomic.Int64
	started time.Time
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /match", s.handleMatch)
	mux.HandleFunc("POST /records", s.handleAddRecord)
	mux.HandleFunc("DELETE /records/{id}", s.handleDeleteRecord)
	mux.HandleFunc("GET /clusters/{id}", s.handleCluster)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// recordPayload carries one record, either positional (values) or named
// (record); named form fills unmentioned attributes with "".
type recordPayload struct {
	ID     *int              `json:"id,omitempty"`
	Values []string          `json:"values,omitempty"`
	Record map[string]string `json:"record,omitempty"`
}

// resolve turns the payload into positional values of rel.
func (p *recordPayload) resolve(rel *schema.Relation) ([]string, error) {
	switch {
	case p.Values != nil && p.Record != nil:
		return nil, fmt.Errorf("give either values or record, not both")
	case p.Values != nil:
		if len(p.Values) != rel.Arity() {
			return nil, fmt.Errorf("%s expects %d values, got %d", rel.Name(), rel.Arity(), len(p.Values))
		}
		return p.Values, nil
	case p.Record != nil:
		vals := make([]string, rel.Arity())
		for attr, v := range p.Record {
			i, ok := rel.Index(attr)
			if !ok {
				return nil, fmt.Errorf("%s has no attribute %q", rel.Name(), attr)
			}
			vals[i] = v
		}
		return vals, nil
	default:
		return nil, fmt.Errorf("missing values or record")
	}
}

type matchResponse struct {
	Matches    []int `json:"matches"`
	Candidates int   `json:"candidates"`
	Compared   int   `json:"compared"`
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var p recordPayload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	vals, err := p.resolve(s.ctx.Right)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.MatchOne(vals)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	matches := res.Matches
	if matches == nil {
		matches = []int{}
	}
	writeJSON(w, http.StatusOK, matchResponse{
		Matches: matches, Candidates: res.Candidates, Compared: res.Compared,
	})
}

func (s *server) handleAddRecord(w http.ResponseWriter, r *http.Request) {
	var p recordPayload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	vals, err := p.resolve(s.ctx.Left)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var id int
	if p.ID != nil {
		id = *p.ID
		// Keep the allocator ahead of explicit ids.
		for {
			cur := s.nextID.Load()
			if int64(id) <= cur || s.nextID.CompareAndSwap(cur, int64(id)) {
				break
			}
		}
	} else {
		id = int(s.nextID.Add(1))
	}
	res, err := s.eng.AddClustered(id, vals)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	applied := res.AppliedMDs
	if applied == nil {
		applied = []int{}
	}
	writeJSON(w, http.StatusOK, addResponse{
		ID:           id,
		Cluster:      res.Cluster,
		AppliedMDs:   applied,
		Applications: res.Applications,
		Passes:       res.Passes,
	})
}

// addResponse reports an ingested record: its id, the dedup cluster
// enforcement put it in, and the chase work its arrival caused.
type addResponse struct {
	ID           int   `json:"id"`
	Cluster      int   `json:"cluster"`
	AppliedMDs   []int `json:"applied_mds"`
	Applications int   `json:"applications"`
	Passes       int   `json:"passes"`
}

// clusterResponse reports a record's cluster and its current (resolved)
// values: enforcement may have grown them since ingestion.
type clusterResponse struct {
	Cluster int               `json:"cluster"`
	Size    int               `json:"size"`
	Members []int             `json:"members"`
	Record  map[string]string `json:"record"`
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	enf := s.eng.Stream()
	cl, ok := enf.ClusterOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record %d", id))
		return
	}
	vals, _ := enf.Record(id)
	rec := make(map[string]string, len(vals))
	for i, name := range enf.Relation().AttrNames() {
		rec[name] = vals[i]
	}
	writeJSON(w, http.StatusOK, clusterResponse{
		Cluster: cl.ID, Size: len(cl.Members), Members: cl.Members, Record: rec,
	})
}

func (s *server) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	if !s.eng.Remove(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record %d", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"removed": id})
}

type statsResponse struct {
	engine.Stats
	ReductionRatio float64      `json:"reduction_ratio"`
	Plan           string       `json:"plan"`
	Workers        int          `json:"workers"`
	UptimeSeconds  float64      `json:"uptime_seconds"`
	Stream         stream.Stats `json:"stream"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:          st,
		ReductionRatio: st.ReductionRatio(),
		Plan:           s.eng.Plan().String(),
		Workers:        s.eng.Workers(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Stream:         s.eng.Stream().Stats(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("matchd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
