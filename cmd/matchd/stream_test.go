package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
)

// TestServeClusterFlow drives the streaming-enforcement endpoints: an
// ingested duplicate lands in its original's cluster, the cluster
// endpoint reports members and resolved values, and /stats carries the
// stream section.
func TestServeClusterFlow(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Every preloaded record answers a cluster query.
	status, out := doJSON(t, ts, http.MethodGet, "/clusters/0", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /clusters/0 = %d (%s)", status, out["error"])
	}
	var members []int
	if err := json.Unmarshal(out["members"], &members); err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(members, 0) {
		t.Fatalf("cluster of record 0 does not contain it: %v", members)
	}

	// Ingest an exact duplicate of record 0: it must join 0's cluster
	// and report the rules that fired.
	var rec map[string]string
	if s, o := doJSON(t, ts, http.MethodGet, "/clusters/0", nil); s == http.StatusOK {
		if err := json.Unmarshal(o["record"], &rec); err != nil {
			t.Fatal(err)
		}
	}
	status, out = doJSON(t, ts, http.MethodPost, "/records", map[string]any{"record": rec})
	if status != http.StatusOK {
		t.Fatalf("POST /records = %d (%s)", status, out["error"])
	}
	var id, cluster, applications int
	var applied []int
	mustField := func(name string, into any) {
		t.Helper()
		raw, ok := out[name]
		if !ok {
			t.Fatalf("POST /records response lacks %q: %v", name, out)
		}
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatal(err)
		}
	}
	mustField("id", &id)
	mustField("cluster", &cluster)
	mustField("applications", &applications)
	mustField("applied_mds", &applied)
	// An exact duplicate (of the RESOLVED record) matches every rule but
	// fires none — its RHS values are already equal — yet it must land
	// in the original's cluster: cluster links follow matches.
	if applications != 0 || len(applied) != 0 {
		t.Logf("note: duplicate also fired rules: applications=%d applied=%v", applications, applied)
	}
	if cluster != 0 {
		t.Errorf("exact duplicate of record 0 got cluster %d, want 0", cluster)
	}
	status, out = doJSON(t, ts, http.MethodGet, fmt.Sprintf("/clusters/%d", id), nil)
	if status != http.StatusOK {
		t.Fatalf("GET /clusters/%d = %d", id, status)
	}
	if err := json.Unmarshal(out["members"], &members); err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(members, 0) || !slices.Contains(members, id) {
		t.Fatalf("cluster members %v should contain 0 and %d", members, id)
	}
	var gotCluster int
	if err := json.Unmarshal(out["cluster"], &gotCluster); err != nil {
		t.Fatal(err)
	}
	if gotCluster != cluster {
		t.Fatalf("cluster id drifted: POST said %d, GET says %d", cluster, gotCluster)
	}

	// Deleting the duplicate un-indexes it from matching but keeps the
	// cluster history.
	if s, _ := doJSON(t, ts, http.MethodDelete, fmt.Sprintf("/records/%d", id), nil); s != http.StatusOK {
		t.Fatalf("DELETE /records/%d = %d", id, s)
	}
	if s, _ := doJSON(t, ts, http.MethodGet, fmt.Sprintf("/clusters/%d", id), nil); s != http.StatusOK {
		t.Fatalf("GET /clusters/%d after delete = %d, cluster history should stay", id, s)
	}

	// Re-adding the same id is rejected: enforcement is insert-once.
	status, out = doJSON(t, ts, http.MethodPost, "/records", map[string]any{"id": id, "record": rec})
	if status != http.StatusBadRequest {
		t.Fatalf("re-POST of id %d = %d, want 400 (%v)", id, status, out)
	}

	// Stats carry the stream section.
	status, out = doJSON(t, ts, http.MethodGet, "/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /stats = %d", status)
	}
	var st struct {
		Records      int `json:"records"`
		Clusters     int `json:"clusters"`
		Applications int `json:"applications"`
	}
	if err := json.Unmarshal(out["stream"], &st); err != nil {
		t.Fatal(err)
	}
	if st.Records == 0 || st.Clusters == 0 || st.Clusters > st.Records {
		t.Fatalf("implausible stream stats: %+v", st)
	}
}

// TestServeClusterErrors covers the error paths of the new endpoints
// and the malformed-body paths of the existing ones.
func TestServeClusterErrors(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Unknown record.
	if s, _ := doJSON(t, ts, http.MethodGet, "/clusters/99999999", nil); s != http.StatusNotFound {
		t.Errorf("unknown cluster: status %d, want 404", s)
	}
	// Non-numeric id.
	if s, _ := doJSON(t, ts, http.MethodGet, "/clusters/abc", nil); s != http.StatusBadRequest {
		t.Errorf("bad cluster id: status %d, want 400", s)
	}

	// Malformed JSON bodies.
	for _, path := range []string{"/match", "/records"} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with junk body: status %d, want 400", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Empty body (no values, no record).
	if s, _ := doJSON(t, ts, http.MethodPost, "/records", map[string]any{}); s != http.StatusBadRequest {
		t.Errorf("empty record payload: status %d, want 400", s)
	}
	// Wrong arity on ingestion.
	if s, _ := doJSON(t, ts, http.MethodPost, "/records",
		map[string]any{"values": []string{"a", "b"}}); s != http.StatusBadRequest {
		t.Errorf("short record: status %d, want 400", s)
	}
}
