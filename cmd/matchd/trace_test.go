package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mdmatch/internal/obs"
	"mdmatch/internal/trace"
)

// tracedServer builds an instrumented durable matchd with tracing and
// exemplars on — every completed request trace is retained (1-in-1
// sample) — wrapped in the production middleware chain.
func tracedServer(t *testing.T, logBuf *bytes.Buffer, level slog.Level) (*server, *httptest.Server) {
	t.Helper()
	cfg := testConfig()
	cfg.dataDir = t.TempDir()
	cfg.reg = obs.NewRegistry()
	cfg.slowTraceMS = 50
	cfg.traceSample = 1
	cfg.traceCapacity = 64
	cfg.exemplars = true
	if logBuf != nil {
		cfg.logger = slog.New(slog.NewJSONHandler(logBuf, &slog.HandlerOptions{Level: level}))
	}
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.close)
	if srv.tracer == nil {
		t.Fatal("instrumented server built without a tracer")
	}
	mux := srv.routes()
	httpm := obs.NewHTTPMetrics(cfg.reg, "matchd").WithTracer(srv.tracer, cfg.exemplars)
	routeOf := func(r *http.Request) string { _, p := mux.Handler(r); return p }
	ts := httptest.NewServer(httpm.Middleware(cfg.logger, routeOf, mux))
	t.Cleanup(ts.Close)
	return srv, ts
}

// creditRecord returns a full credit-side record; mutate fields per test.
func creditRecord() map[string]string {
	return map[string]string{
		"cno": "4000123412341234", "ssn": "123-45-6789",
		"fn": "Augusta", "ln": "Byron", "street": "12 St James Square",
		"city": "London", "county": "Westminster", "zip": "SW1Y",
		"tel": "555-0100", "email": "ada@example.org",
		"gender": "F", "dob": "1815-12-10", "type": "visa",
	}
}

// TestTraceExplainE2E drives the full tracing + provenance surface over
// HTTP: ?explain=1 on ingest returns the chase funnel and firings, on
// /clusters the link trail, on /match the per-rule verdict breakdown;
// every response carries a traceparent whose trace is fetchable from
// /debug/traces; and the latency histogram carries trace_id exemplars.
func TestTraceExplainE2E(t *testing.T) {
	_, ts := tracedServer(t, nil, slog.LevelInfo)

	// Ingest a record, then a near-duplicate: the dedup MDs must fire on
	// the second insert and merge the pair into one cluster.
	status, out := doJSON(t, ts, http.MethodPost, "/records?explain=1", map[string]any{"record": creditRecord()})
	if status != http.StatusOK {
		t.Fatalf("POST /records?explain=1 #1 = %d (%s)", status, out["error"])
	}
	var id1 int
	if err := json.Unmarshal(out["id"], &id1); err != nil {
		t.Fatal(err)
	}
	var ex1 struct {
		Funnel []map[string]int64 `json:"funnel"`
	}
	if err := json.Unmarshal(out["explain"], &ex1); err != nil {
		t.Fatalf("first insert returned no explain payload: %v", err)
	}
	if len(ex1.Funnel) == 0 {
		t.Fatal("explain funnel is empty: want one row per dedup rule")
	}

	dup := creditRecord()
	dup["email"] = "" // resolvable difference: the chase restores it
	status, out = doJSON(t, ts, http.MethodPost, "/records?explain=1", map[string]any{"record": dup})
	if status != http.StatusOK {
		t.Fatalf("POST /records?explain=1 #2 = %d (%s)", status, out["error"])
	}
	var id2, cluster2 int
	if err := json.Unmarshal(out["id"], &id2); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out["cluster"], &cluster2); err != nil {
		t.Fatal(err)
	}
	var ex2 struct {
		Firings []struct {
			Seq   int `json:"seq"`
			Rule  int `json:"rule"`
			Cells []struct {
				LeftBefore  string `json:"left_before"`
				RightBefore string `json:"right_before"`
				After       string `json:"after"`
			} `json:"cells"`
		} `json:"firings"`
		Links []struct {
			Rule  int `json:"rule"`
			Left  int `json:"left"`
			Right int `json:"right"`
		} `json:"links"`
	}
	if err := json.Unmarshal(out["explain"], &ex2); err != nil {
		t.Fatal(err)
	}
	if len(ex2.Firings) == 0 {
		t.Fatal("duplicate insert fired no rules; explain should show the dedup chase")
	}
	if ex2.Firings[0].Seq != 1 {
		t.Fatalf("firing sequence starts at %d, want 1", ex2.Firings[0].Seq)
	}
	restored := false
	for _, f := range ex2.Firings {
		for _, c := range f.Cells {
			if c.After == "ada@example.org" && (c.LeftBefore == "" || c.RightBefore == "") {
				restored = true
			}
		}
	}
	if !restored {
		t.Fatalf("no firing shows the blanked email resolved back: %+v", ex2.Firings)
	}
	if len(ex2.Links) == 0 {
		t.Fatal("duplicate insert produced no link events")
	}

	// The cluster trail replays the links that built the pair's cluster.
	status, out = doJSON(t, ts, http.MethodGet, "/clusters/"+itoa(id2)+"?explain=1", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /clusters?explain=1 = %d (%s)", status, out["error"])
	}
	var trail []struct {
		Rule  int `json:"rule"`
		Left  int `json:"left"`
		Right int `json:"right"`
	}
	if err := json.Unmarshal(out["trail"], &trail); err != nil {
		t.Fatalf("cluster response has no trail: %v", err)
	}
	found := false
	for _, ev := range trail {
		if (ev.Left == id1 && ev.Right == id2) || (ev.Left == id2 && ev.Right == id1) {
			found = true
		}
		if ev.Rule < 0 {
			t.Fatalf("live trail carries a restored marker: %+v", ev)
		}
	}
	if !found {
		t.Fatalf("trail %+v does not link %d and %d", trail, id1, id2)
	}

	// Match explain: the per-candidate verdict breakdown must agree with
	// the fast path's match set.
	query := map[string]string{
		"cno": "4000123412341234", "fn": "Augusta", "ln": "Byron",
		"street": "12 St James Square", "city": "London",
		"county": "Westminster", "zip": "SW1Y", "phn": "555-0100",
		"email": "ada@example.org", "gender": "F", "dob": "1815-12-10",
	}
	status, out = doJSON(t, ts, http.MethodPost, "/match", map[string]any{"record": query})
	if status != http.StatusOK {
		t.Fatalf("POST /match = %d", status)
	}
	var fastMatches []int
	if err := json.Unmarshal(out["matches"], &fastMatches); err != nil {
		t.Fatal(err)
	}
	status, out = doJSON(t, ts, http.MethodPost, "/match?explain=1", map[string]any{"record": query})
	if status != http.StatusOK {
		t.Fatalf("POST /match?explain=1 = %d (%s)", status, out["error"])
	}
	var keys []string
	if err := json.Unmarshal(out["keys"], &keys); err != nil || len(keys) == 0 {
		t.Fatalf("explain keys = %v (%v)", keys, err)
	}
	var results []struct {
		ID      int      `json:"id"`
		Values  []string `json:"values"`
		Rules   []int    `json:"rules"`
		Matched bool     `json:"matched"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	explained := make([]int, 0, len(results))
	for _, r := range results {
		if r.Matched {
			if len(r.Rules) == 0 {
				t.Fatalf("candidate %d matched with no satisfied rule", r.ID)
			}
			explained = append(explained, r.ID)
		}
		if len(r.Values) == 0 {
			t.Fatalf("candidate %d has no values", r.ID)
		}
	}
	if len(explained) != len(fastMatches) {
		t.Fatalf("explain matched %v, fast path matched %v", explained, fastMatches)
	}
	for i := range explained {
		if explained[i] != fastMatches[i] {
			t.Fatalf("explain matched %v, fast path matched %v", explained, fastMatches)
		}
	}

	// Batch explain is rejected.
	status, _ = doJSON(t, ts, http.MethodPost, "/match?explain=1",
		map[string]any{"batch": []any{map[string]any{"record": query}}})
	if status != http.StatusBadRequest {
		t.Fatalf("batch explain = %d, want 400", status)
	}

	// Every response above carried a traceparent; the newest one must be
	// fetchable from the debug surface.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tp := resp.Header.Get("traceparent")
	tid, _, ok := trace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	status, out = doJSON(t, ts, http.MethodGet, "/debug/traces/"+tid, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d (%s)", tid, status, out["error"])
	}
	var root struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(out["root"], &root); err != nil {
		t.Fatal(err)
	}
	if root.Name != "http GET /stats" {
		t.Fatalf("fetched trace root = %q", root.Name)
	}
	status, out = doJSON(t, ts, http.MethodGet, "/debug/traces", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", status)
	}
	var traces []json.RawMessage
	if err := json.Unmarshal(out["traces"], &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) < 5 {
		t.Fatalf("retained traces = %d, want every request (>= 5)", len(traces))
	}
	if status, _ := doJSON(t, ts, http.MethodGet, "/debug/traces/ffffffffffffffffffffffffffffffff", nil); status != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d, want 404", status)
	}

	// The scrape carries trace_id exemplars on the latency histogram.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), `# {trace_id="`) {
		t.Fatal("no trace_id exemplar in the exposition")
	}
	if _, err := obs.ParseText(bytes.NewReader(body)); err != nil {
		t.Fatalf("conformance parse with exemplars: %v", err)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestRequestIDAcrossLayers is the cross-layer correlation regression:
// ONE ingest request with a caller-supplied X-Request-Id must produce
// the middleware's "request" line, the enforcer's "stream insert" line
// and the store's "wal append" line, all carrying that id.
func TestRequestIDAcrossLayers(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := tracedServer(t, &logBuf, slog.LevelDebug)

	const rid = "rid-cross-layer-1"
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(map[string]any{"record": creditRecord()}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/records", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, rid)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /records = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != rid {
		t.Fatalf("response echoes request id %q, want %q", got, rid)
	}

	want := map[string]bool{"request": false, "stream insert": false, "wal append": false}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			continue
		}
		msg, _ := entry["msg"].(string)
		if _, tracked := want[msg]; !tracked {
			continue
		}
		if entry["request_id"] == rid {
			want[msg] = true
		}
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("no %q log line carries request_id %q\nlog:\n%s", msg, rid, logBuf.String())
		}
	}
}
