package main

// Degraded-mode state machine and admission control.
//
// matchd serves from in-memory state; the disk is only in the write
// path (WAL append) and the background snapshot path. So a failing disk
// must not take reads down: a WAL append failure — which internal/store
// latches permanently, because the log may have a torn tail — flips the
// daemon to DEGRADED-READONLY serving. /match, /clusters/{id} and
// /stats keep answering from memory; mutations are rejected with 503 +
// Retry-After. The state is sticky until restart by design: the store
// refuses every append after the latch, and a restart re-opens (and
// repairs) the directory — recovering exactly the journaled state,
// since the enforcer journals BEFORE mutating and therefore never
// applied anything the WAL lost.
//
// Admission control sheds load before it reaches the engine: a bounded
// in-flight budget (-max-inflight) returns 429 the moment too many
// match/ingest requests are in the house, and a queue-depth high
// watermark (-queue-high-watermark) returns 503 while the engine's
// in-flight batches plus the enforcer's insert queue exceed it. Both
// checks run before the request body is read — an over-budget request
// costs a counter increment, not a decode and a chase.

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"mdmatch/internal/stream"
	"mdmatch/internal/trace"
)

// healthState is the serving health state machine. Transitions: ok →
// degraded-readonly (latched WAL failure; sticky until restart), and
// any state → draining (shutdown signal received).
type healthState int32

const (
	healthOK       healthState = 0
	healthDegraded healthState = 1
	healthDraining healthState = 2
)

func (h healthState) String() string {
	switch h {
	case healthOK:
		return "ok"
	case healthDegraded:
		return "degraded-readonly"
	case healthDraining:
		return "draining"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

func (s *server) healthState() healthState { return healthState(s.health.Load()) }

// enterDegraded flips ok → degraded-readonly once. Later causes are
// ignored: the first latched failure already disabled mutations, and
// the transition counter should count transitions, not failed retries.
// The context carries the request id of the request whose mutation
// latched the failure (the background snapshotter passes none), so the
// transition log line joins the request's trail across the layers.
func (s *server) enterDegraded(ctx context.Context, cause error) {
	if s.health.CompareAndSwap(int32(healthOK), int32(healthDegraded)) {
		s.log.Error("degraded-readonly: WAL append failed; mutations disabled until restart",
			"request_id", trace.RequestID(ctx), "err", cause)
		if s.hm != nil {
			s.hm.DegradedTransitions.Inc()
		}
	}
}

// enterDraining marks shutdown: every health state yields to draining.
func (s *server) enterDraining() {
	for {
		cur := s.health.Load()
		if cur == int32(healthDraining) || s.health.CompareAndSwap(cur, int32(healthDraining)) {
			return
		}
	}
}

// rejectAdmission writes one shed-load response and counts it.
func (s *server) rejectAdmission(w http.ResponseWriter, status int, retryAfter, reason string, err error) {
	if s.hm != nil {
		s.hm.AdmissionRejected.With(reason).Inc()
	}
	w.Header().Set("Retry-After", retryAfter)
	writeError(w, status, err)
}

// admit is the admission-control middleware for the heavy data
// endpoints. Both checks run BEFORE the body is decoded, so an
// over-budget request never touches the chase. The in-flight slot is
// held for the rest of the handler (including its MatchBatch worker
// pool); the watermark is advisory (read-only sampling of the queue
// depths), which is the point — it sheds new work while the backlog
// stands, without coordinating with it.
func (s *server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if max := s.cfg.maxInflight; max > 0 {
			if cur := s.inflightReqs.Add(1); cur > int64(max) {
				s.inflightReqs.Add(-1)
				s.rejectAdmission(w, http.StatusTooManyRequests, "1", "inflight",
					fmt.Errorf("over the in-flight budget (%d requests admitted)", max))
				return
			}
			defer s.inflightReqs.Add(-1)
		}
		if hw := s.cfg.queueHighWatermark; hw > 0 {
			depth := int(s.eng.InFlightBatches()) + s.eng.Stream().QueueDepth()
			if depth >= hw {
				s.rejectAdmission(w, http.StatusServiceUnavailable, "1", "queue",
					fmt.Errorf("queue depth %d at or above the high watermark (%d)", depth, hw))
				return
			}
		}
		h(w, r)
	}
}

// mutating gates a write endpoint on the health state: degraded or
// draining serving rejects mutations with 503 + Retry-After while reads
// keep flowing. Degraded mode needs a restart, so its Retry-After is
// long; draining resolves in seconds (a replacement process), so it
// retries sooner.
func (s *server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hs := s.healthState(); hs != healthOK {
			retryAfter := "1"
			if hs == healthDegraded {
				retryAfter = "30"
			}
			s.rejectAdmission(w, http.StatusServiceUnavailable, retryAfter, "readonly",
				fmt.Errorf("%s: mutations are disabled (reads keep serving)", hs))
			return
		}
		h(w, r)
	}
}

// degradeOnJournalFailure inspects a mutation error: a journal failure
// means the store latched and the daemon is now read-only. It reports
// whether the error was handled (response written).
func (s *server) degradeOnJournalFailure(ctx context.Context, w http.ResponseWriter, err error) bool {
	var je *stream.JournalError
	if !errors.As(err, &je) {
		return false
	}
	s.enterDegraded(ctx, err)
	// The record was valid but could not be made durable — the server's
	// fault, and retrying the same payload against a recovered (or
	// replacement) process is reasonable.
	w.Header().Set("Retry-After", "30")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("durability failed; serving read-only: %v", err))
	return true
}
