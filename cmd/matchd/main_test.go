package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// testConfig is the small corpus configuration the HTTP tests share.
func testConfig() config {
	return config{k: 150, seed: 1, m: 5, workers: 2, shards: 8, maxBody: 1 << 20}
}

// testServer builds a small matchd instance once per test binary.
func testServer(t *testing.T) *server {
	t.Helper()
	srv, err := buildServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	return resp.StatusCode, out
}

func TestServeMatchFlow(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Liveness.
	status, _ := doJSON(t, ts, http.MethodGet, "/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("/healthz = %d", status)
	}

	// Add a fresh credit record, then match a billing-shaped query that
	// agrees on the blocking keys and the rule attributes.
	rec := map[string]string{
		"cno": "4000123412341234", "ssn": "123-45-6789",
		"fn": "Augusta", "ln": "Byron", "street": "12 St James Square",
		"city": "London", "county": "Westminster", "zip": "SW1Y",
		"tel": "555-0100", "email": "ada@example.org",
		"gender": "F", "dob": "1815-12-10", "type": "visa",
	}
	status, out := doJSON(t, ts, http.MethodPost, "/records", map[string]any{"record": rec})
	if status != http.StatusOK {
		t.Fatalf("POST /records = %d (%s)", status, out["error"])
	}
	var id int
	if err := json.Unmarshal(out["id"], &id); err != nil {
		t.Fatal(err)
	}

	query := map[string]string{
		"cno": "4000123412341234", "fn": "Augusta", "ln": "Byron",
		"street": "12 St James Square", "city": "London",
		"county": "Westminster", "zip": "SW1Y", "phn": "555-0100",
		"email": "ada@example.org", "gender": "F", "dob": "1815-12-10",
	}
	status, out = doJSON(t, ts, http.MethodPost, "/match", map[string]any{"record": query})
	if status != http.StatusOK {
		t.Fatalf("POST /match = %d (%s)", status, out["error"])
	}
	var matches []int
	if err := json.Unmarshal(out["matches"], &matches); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("matches %v do not include the added record %d", matches, id)
	}

	// Remove it; the same query must no longer return it.
	status, _ = doJSON(t, ts, http.MethodDelete, fmt.Sprintf("/records/%d", id), nil)
	if status != http.StatusOK {
		t.Fatalf("DELETE /records/%d = %d", id, status)
	}
	status, out = doJSON(t, ts, http.MethodPost, "/match", map[string]any{"record": query})
	if status != http.StatusOK {
		t.Fatalf("POST /match after delete = %d", status)
	}
	if err := json.Unmarshal(out["matches"], &matches); err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m == id {
			t.Fatalf("record %d still matched after delete", id)
		}
	}

	// Stats reflect the queries.
	status, out = doJSON(t, ts, http.MethodGet, "/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /stats = %d", status)
	}
	var queries uint64
	if err := json.Unmarshal(out["queries"], &queries); err != nil {
		t.Fatal(err)
	}
	if queries < 2 {
		t.Fatalf("stats Queries = %d, want >= 2", queries)
	}
	var rr float64
	if err := json.Unmarshal(out["reduction_ratio"], &rr); err != nil {
		t.Fatal(err)
	}
	if rr < 0 || rr > 1 {
		t.Fatalf("reduction_ratio = %v", rr)
	}
}

func TestServeErrors(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Unknown attribute.
	status, out := doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"record": map[string]string{"nope": "x"}})
	if status != http.StatusBadRequest {
		t.Fatalf("bad attribute: status %d, body %v", status, out)
	}
	// Wrong arity.
	status, _ = doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"values": []string{"just", "two"}})
	if status != http.StatusBadRequest {
		t.Fatalf("bad arity: status %d", status)
	}
	// Both forms at once.
	status, _ = doJSON(t, ts, http.MethodPost, "/match",
		map[string]any{"values": []string{"x"}, "record": map[string]string{"fn": "x"}})
	if status != http.StatusBadRequest {
		t.Fatalf("both forms: status %d", status)
	}
	// Delete of a record that is not there.
	status, _ = doJSON(t, ts, http.MethodDelete, "/records/99999999", nil)
	if status != http.StatusNotFound {
		t.Fatalf("missing delete: status %d", status)
	}
}
