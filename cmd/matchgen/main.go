// Command matchgen generates the synthetic credit/billing datasets of
// the evaluation (Section 6.2 protocol: corpora-backed clean tuples,
// 80% duplicates, 80% per-attribute errors) and writes them as CSV files
// plus the ground-truth match list.
//
// Example:
//
//	matchgen -k 10000 -seed 1 -out ./data
//
// writes data/credit.csv, data/billing.csv and data/truth.csv.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"mdmatch/internal/gen"
)

func main() {
	var (
		k       = flag.Int("k", 1000, "number of card holders (K)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dup     = flag.Float64("dup", 0.8, "duplicate rate")
		errProb = flag.Float64("err", 0.8, "per-attribute error probability in duplicates")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*k, *seed, *dup, *errProb, *out); err != nil {
		fmt.Fprintln(os.Stderr, "matchgen:", err)
		os.Exit(1)
	}
}

func run(k int, seed int64, dup, errProb float64, out string) error {
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	cfg.DupRate = dup
	cfg.ErrProb = errProb
	ds, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f io.Writer) error) error {
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("credit.csv", ds.Credit.WriteCSV); err != nil {
		return err
	}
	if err := write("billing.csv", ds.Billing.WriteCSV); err != nil {
		return err
	}
	if err := write("truth.csv", func(f io.Writer) error {
		w := csv.NewWriter(f)
		if err := w.Write([]string{"credit_id", "billing_id"}); err != nil {
			return err
		}
		pairs := ds.Truth().Pairs()
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Left != pairs[j].Left {
				return pairs[i].Left < pairs[j].Left
			}
			return pairs[i].Right < pairs[j].Right
		})
		for _, p := range pairs {
			if err := w.Write([]string{fmt.Sprint(p.Left), fmt.Sprint(p.Right)}); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}); err != nil {
		return err
	}
	truth := ds.Truth()
	fmt.Printf("wrote %s: %d credit tuples, %d billing tuples, %d true matches (space %d pairs, match rate %.5f)\n",
		out, ds.Credit.Len(), ds.Billing.Len(), truth.Len(), ds.TotalPairs(),
		float64(truth.Len())/float64(ds.TotalPairs()))
	return nil
}
