package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdmatch/internal/gen"
	"mdmatch/internal/record"
)

func TestRunWritesDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run(50, 1, 0.8, 0.8, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"credit.csv", "billing.csv", "truth.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	// The written credit CSV round-trips through record.ReadCSV.
	f, err := os.Open(filepath.Join(dir, "credit.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := record.ReadCSV(gen.CreditSchema(), f)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() < 50 {
		t.Fatalf("credit rows = %d, want >= 50", in.Len())
	}
	// Truth references ids that exist.
	truth, err := os.ReadFile(filepath.Join(dir, "truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(truth)), "\n")
	if lines[0] != "credit_id,billing_id" {
		t.Fatalf("truth header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("truth has no pairs")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 1, 0.8, 0.8, t.TempDir()); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run(10, 1, 0.8, 0.8, "/dev/null/impossible"); err == nil {
		t.Error("unwritable output dir accepted")
	}
}
