package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean runs both checks against the repository itself: the
// CI docs job must never be the first place a violation shows up.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	if problems := checkPackageComments(root); len(problems) > 0 {
		t.Errorf("package comments: %v", problems)
	}
	if problems := checkMarkdownLinks(root); len(problems) > 0 {
		t.Errorf("markdown links: %v", problems)
	}
}

func TestDetectsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Dir(filepath.Join(dir, name)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("undoc/x.go", "package undoc\n")
	write("doc/x.go", "// Package doc is documented.\npackage doc\n")
	write("notes.md", "see [good](doc/x.go), [site](https://example.com), "+
		"[anchor](#sec), [sub](sub/ok.md#frag), and [bad](missing.md)\n")
	write("sub/ok.md", "fine\n")

	problems := checkPackageComments(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "undoc") {
		t.Errorf("package comments found %v, want one 'undoc' problem", problems)
	}
	problems = checkMarkdownLinks(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing.md") {
		t.Errorf("markdown links found %v, want one 'missing.md' problem", problems)
	}
}
