// Command docscheck verifies the repository's documentation layer and
// exits non-zero on any violation. It enforces two invariants that
// rot silently:
//
//   - every Go package in the module — internal/*, cmd/*, the facade,
//     the examples — carries a package comment stating its contract;
//   - every relative link in the markdown docs (README.md, DESIGN.md,
//     docs/*.md, ...) resolves to an existing file.
//
// Wired up as `make docs-check` and run by the CI docs job.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkPackageComments(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkPackageComments walks every directory containing Go files and
// reports packages in which no non-test file carries a package doc
// comment.
func checkPackageComments(root string) []string {
	var problems []string
	dirs := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return []string{fmt.Sprintf("walking %s: %v", root, err)}
	}
	for dir, files := range dirs {
		documented := false
		for _, file := range files {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", file, err))
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			problems = append(problems, fmt.Sprintf("package %s has no package comment", dir))
		}
	}
	return problems
}

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdownLinks resolves every relative link of every markdown
// file under root against the file system.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(path), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walking %s: %v", root, err))
	}
	return problems
}
