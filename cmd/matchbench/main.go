// Command matchbench regenerates the tables behind every figure of the
// paper's evaluation (Section 6). Each figure prints the same series the
// paper plots; see EXPERIMENTS.md for the paper-vs-measured record.
//
//	matchbench -fig 8a          # findRCKs runtime vs card(Σ)
//	matchbench -fig 8b          # findRCKs runtime vs m
//	matchbench -fig 8c          # total number of RCKs
//	matchbench -fig 9           # FS vs FSrck (accuracy + time)
//	matchbench -fig 10          # SN vs SNrck (accuracy + time)
//	matchbench -fig 9d          # blocking PC/RR (covers 10d)
//	matchbench -fig win         # windowing PC/RR
//	matchbench -fig all         # everything
//
// -scale bench (default) uses sizes that finish in minutes; -scale paper
// uses the paper's full parameters (card(Σ) to 2000, K to 80k).
//
// With -path, matchbench instead profiles one execution path of the
// shared exec kernel (all paths compile their rules through
// internal/exec, so one binary can exercise any of them):
//
//	matchbench -path chase -k 1000     # worklist enforcement chase
//	matchbench -path ruleset -k 1000   # blocked candidates × RCK rule set
//	matchbench -path engine -k 1000    # serving engine MatchBatch
//	matchbench -path snapshot -k 1000  # durable load → streamed snapshot → recovery
//
// -cpuprofile and -memprofile write pprof profiles covering the run
// (any mode), so perf work can attach evidence:
//
//	matchbench -path chase -k 1000 -cpuprofile chase.pprof
//	go tool pprof chase.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"mdmatch/internal/experiments"
)

type scaleParams struct {
	cards   []int // Fig 8(a)
	ms      []int // Fig 8(b)
	card8b  int
	cards8c []int
	yLens   []int
	ks      []int // Figs 9/10
	blockKs []int // Fig 9d / windowing
}

func benchScale() scaleParams {
	return scaleParams{
		cards:   seq(200, 1000, 200),
		ms:      seq(5, 25, 5),
		card8b:  1000,
		cards8c: seq(10, 40, 10),
		yLens:   []int{6, 8, 10, 12},
		ks:      []int{1000, 2000, 4000, 8000},
		blockKs: []int{1000, 2000, 4000, 8000},
	}
}

func paperScale() scaleParams {
	return scaleParams{
		cards:   seq(200, 2000, 200),
		ms:      seq(5, 50, 5),
		card8b:  2000,
		cards8c: seq(10, 40, 10),
		yLens:   []int{6, 8, 10, 12},
		ks:      []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000},
		blockKs: []int{10000, 20000, 40000, 80000},
	}
}

func seq(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

func main() {
	// os.Exit only after every defer (profile flushes) has run: a
	// failing -memprofile must not truncate the -cpuprofile of an
	// otherwise successful expensive run.
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "matchbench:", err)
		os.Exit(1)
	}
}

func mainErr() (err error) {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 8a, 8b, 8c, 9, 10, 9d, win, all")
		scale      = flag.String("scale", "bench", "bench (minutes) or paper (full Section 6 parameters)")
		seed       = flag.Int64("seed", 1, "experiment seed")
		path       = flag.String("path", "", "profile one execution path instead: chase, ruleset, engine or snapshot")
		k          = flag.Int("k", 1000, "dataset scale (K holders) for -path profiling")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, cerr := os.Create(*cpuprofile)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			return cerr
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, merr := os.Create(*memprofile)
			if merr == nil {
				defer f.Close()
				runtime.GC() // flush recently freed objects so live heap is accurate
				merr = pprof.WriteHeapProfile(f)
			}
			if merr != nil && err == nil {
				err = merr
			}
		}()
	}
	if *path != "" {
		return experiments.Profile(os.Stdout, *path, *k, *seed)
	}
	var p scaleParams
	switch *scale {
	case "bench":
		p = benchScale()
	case "paper":
		p = paperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	return run(os.Stdout, *fig, p, *seed)
}

func run(w io.Writer, fig string, p scaleParams, seed int64) error {
	all := fig == "all"
	did := false
	if all || fig == "8a" {
		did = true
		if _, err := experiments.Fig8a(w, p.cards, p.yLens, 20, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || fig == "8b" {
		did = true
		if _, err := experiments.Fig8b(w, p.ms, p.yLens, p.card8b, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || fig == "8c" {
		did = true
		if _, err := experiments.Fig8c(w, p.cards8c, p.yLens, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || fig == "9" {
		did = true
		if _, err := experiments.Fig9(w, p.ks, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || fig == "10" {
		did = true
		if _, err := experiments.Fig10(w, p.ks, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || fig == "9d" || fig == "10d" {
		did = true
		if _, err := experiments.Fig9d(w, p.blockKs, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || fig == "win" {
		did = true
		if _, err := experiments.Windowing(w, p.blockKs, seed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if !did {
		return fmt.Errorf("unknown figure %q (want 8a, 8b, 8c, 9, 10, 9d, win, all)", fig)
	}
	return nil
}
