package main

import (
	"io"
	"testing"

	"mdmatch/internal/experiments"
)

func TestSeq(t *testing.T) {
	got := seq(200, 1000, 200)
	want := []int{200, 400, 600, 800, 1000}
	if len(got) != len(want) {
		t.Fatalf("seq = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq = %v", got)
		}
	}
	if len(seq(10, 5, 1)) != 0 {
		t.Error("empty range must produce nothing")
	}
}

func TestScales(t *testing.T) {
	b := benchScale()
	p := paperScale()
	if b.cards[len(b.cards)-1] >= p.cards[len(p.cards)-1] {
		t.Error("bench scale must be smaller than paper scale")
	}
	if p.cards[len(p.cards)-1] != 2000 {
		t.Errorf("paper scale card max = %d, want 2000 (Section 6.1)", p.cards[len(p.cards)-1])
	}
	if p.ms[len(p.ms)-1] != 50 {
		t.Errorf("paper scale m max = %d, want 50", p.ms[len(p.ms)-1])
	}
	if p.ks[len(p.ks)-1] != 80000 {
		t.Errorf("paper scale K max = %d, want 80000 (Section 6.2)", p.ks[len(p.ks)-1])
	}
	if len(b.yLens) != 4 || b.yLens[0] != 6 || b.yLens[3] != 12 {
		t.Errorf("yLens = %v, want {6,8,10,12}", b.yLens)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(io.Discard, "nope", benchScale(), 1); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunSingleFigureSmoke(t *testing.T) {
	// A tiny custom scale keeps this fast while exercising the wiring.
	p := scaleParams{
		cards:   []int{50},
		ms:      []int{5},
		card8b:  50,
		cards8c: []int{10},
		yLens:   []int{6},
		ks:      []int{60},
		blockKs: []int{60},
	}
	for _, fig := range []string{"8a", "8b", "8c", "9", "10", "9d", "win"} {
		if err := run(io.Discard, fig, p, 1); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestProfilePathsSmoke(t *testing.T) {
	for _, path := range []string{"chase", "ruleset", "engine"} {
		if err := experiments.Profile(io.Discard, path, 40, 1); err != nil {
			t.Errorf("path %s: %v", path, err)
		}
	}
	if err := experiments.Profile(io.Discard, "nope", 40, 1); err == nil {
		t.Error("unknown path accepted")
	}
}
