package mdmatch

import (
	"strings"
	"testing"
)

// paperRules is the running example of the paper in rule-language form.
const paperRules = `
schema credit(cno, ssn, fn, ln, addr, tel, email, gender, type)
schema billing(cno, fn, ln, post, phn, email, gender, item, price)

pair credit billing

md credit[ln] = billing[ln] && credit[addr] = billing[post] && credit[fn] ~dl(0.75) billing[fn]
   -> credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]
md credit[tel] = billing[phn] -> credit[addr] <=> billing[post]
md credit[email] = billing[email] -> credit[fn, ln] <=> billing[fn, ln]

target credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]
`

// TestPublicAPIEndToEnd drives the full public surface: parse rules,
// deduce RCKs, build instances, match, enforce, evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	doc, err := ParseRules(paperRules)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := FindRCKs(doc.Ctx, doc.MDs, doc.Targets[0], 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("derived %d keys, want 5", len(keys))
	}

	// Figure 1 data through the public API.
	credit := doc.Schemas["credit"]
	billing := doc.Schemas["billing"]
	ic := NewInstance(credit)
	t1 := ic.MustAppend("111", "079172485", "Mark", "Clifford", "10 Oak Street, MH, NJ 07974", "908-1111111", "mc@gm.com", "M", "master")
	ib := NewInstance(billing)
	t6 := ib.MustAppend("111", "M.", "Clivord", "NJ", "908-1111111", "mc@gm.com", "null", "CD", "14.99")
	d, err := NewPairInstance(doc.Ctx, ic, ib)
	if err != nil {
		t.Fatal(err)
	}

	// rck4 (email+tel) matches (t1, t6) though names/addresses differ.
	rules := NewRuleSet(keys...)
	ok, err := rules.Match(d, t1, t6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("deduced keys must match (t1, t6)")
	}

	// Enforcement produces a stable instance.
	res, err := Enforce(d, doc.MDs)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := IsStable(res.Instance, doc.MDs)
	if err != nil || !stable {
		t.Fatalf("enforcement not stable: %v %v", stable, err)
	}

	// Metrics plumbing.
	found := NewPairSet(PairRef{Left: t1.ID, Right: t6.ID})
	q := Evaluate(found, found)
	if q.Precision() != 1 || q.Recall() != 1 {
		t.Error("self-evaluation must be perfect")
	}

	// Deduction API.
	rck4, err := NewKey(doc.Ctx, doc.Targets[0], []Conjunct{
		EqC("email", "email"), EqC("tel", "phn"),
	})
	if err != nil {
		t.Fatal(err)
	}
	yes, err := DeduceKey(doc.MDs, rck4)
	if err != nil || !yes {
		t.Fatalf("DeduceKey(rck4) = %v, %v", yes, err)
	}

	// Round-trip the document.
	if _, err := ParseRules(FormatRules(doc)); err != nil {
		t.Fatalf("FormatRules output does not re-parse: %v", err)
	}
}

func TestPublicGeneratorAndMatchers(t *testing.T) {
	ds, err := GenerateDataset(DefaultGenConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	target := CreditBillingTarget(ds.Ctx)
	sigma := CreditBillingMDs(ds.Ctx)
	keys, err := FindRCKs(ds.Ctx, sigma, target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys = PruneSubsumed(keys)
	d := ds.Pair()

	ks := NewKeySpec(P("ln", "ln"), P("zip", "zip"))
	cands, err := Window(d, ks, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs := &FSMatcher{Fields: FieldsFromKeys(keys), SampleSize: 10000}
	res, err := fs.Run(d, cands)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(res.Matches, ds.Truth())
	if q.TruePositives == 0 {
		t.Error("FS matcher found nothing through the public API")
	}

	sn, err := RunSN(d, SNConfig{
		Passes: []SNPass{{Key: ks, Window: 10}},
		Rules:  NewRuleSet(keys...),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Matches.Len() == 0 {
		t.Error("SN matcher found nothing through the public API")
	}
	bq := EvaluateBlocking(cands, ds.Truth(), ds.TotalPairs())
	if bq.RR() <= 0 {
		t.Error("windowing did not reduce the comparison space")
	}
}

func TestPublicSimilarityAndCSV(t *testing.T) {
	if !DL(0.8).Similar("Clifford", "Cliffort") {
		t.Error("DL operator broken through facade")
	}
	if Soundex("Clifford") != Soundex("Clivord") {
		t.Error("Soundex broken through facade")
	}
	syn := SynonymOp(Eq(), map[string]string{"USA": "United States"})
	if !syn.Similar("usa", "United States") {
		t.Error("SynonymOp broken through facade")
	}
	if !JaroWinkler(0.9).Similar("martha", "marhta") {
		t.Error("JaroWinkler broken through facade")
	}
	rel, err := StringsRelation("p", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInstance(rel)
	in.MustAppend("x", "y")
	var sb strings.Builder
	if err := in.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(rel, strings.NewReader(sb.String()))
	if err != nil || back.Len() != 1 {
		t.Fatalf("CSV round trip failed: %v", err)
	}
}

func TestPublicSatisfiesAndNegative(t *testing.T) {
	doc, err := ParseRules(paperRules)
	if err != nil {
		t.Fatal(err)
	}
	ic := NewInstance(doc.Schemas["credit"])
	ic.MustAppend("111", "s", "Mark", "Clifford", "addr1", "908", "e@x", "M", "m")
	ib := NewInstance(doc.Schemas["billing"])
	ib.MustAppend("111", "Mark", "Clifford", "addr2", "908", "e@x", "M", "i", "1")
	d, err := NewPairInstance(doc.Ctx, ic, ib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enforce(d, doc.MDs)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Satisfies(d, res.Instance, doc.MDs[1])
	if err != nil || !ok {
		t.Fatalf("Satisfies through facade = %v, %v", ok, err)
	}
	// Negative rule conflicting with Σ is detected.
	neg := NegativeMD{Ctx: doc.Ctx, LHS: doc.MDs[1].LHS, RHS: doc.MDs[1].RHS}
	conflict, err := neg.ConflictsWith(doc.MDs)
	if err != nil || !conflict {
		t.Fatalf("ConflictsWith = %v, %v (Σ forces exactly this identification)", conflict, err)
	}
}
