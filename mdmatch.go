// Package mdmatch is the public API of the library: a Go implementation
// of "Reasoning about Record Matching Rules" (Fan, Jia, Li, Ma —
// VLDB 2009).
//
// The library provides:
//
//   - matching dependencies (MDs) and relative candidate keys (RCKs)
//     with their dynamic semantics;
//   - compile-time reasoning: the MDClosure deduction algorithm
//     (Theorem 4.1) and the findRCKs quality-key derivation algorithm
//     (Section 5);
//   - a rule language for authoring schemas, MDs and targets as text;
//   - instance-level machinery: similarity operators, enforcement
//     (chase to a stable instance), rule-based matching;
//   - two complete matchers — Fellegi–Sunter with EM estimation, and
//     the Sorted-Neighborhood method — plus blocking and windowing
//     optimizers and match-quality metrics;
//   - a concurrent match-serving engine: rule sets compiled once into
//     executable plans, a sharded incremental blocking index, and batch
//     matching over a worker pool (cmd/matchd exposes it over HTTP);
//   - a streaming enforcement engine (NewStreamEnforcer): the chase
//     kept alive across insertions, answering every inserted record
//     with its dedup cluster and the rules its arrival fired.
//
// # Quickstart
//
//	doc, _ := mdmatch.ParseRules(ruleText)
//	keys, _ := mdmatch.FindRCKs(doc.Ctx, doc.MDs, doc.Targets[0], 5, nil)
//	rules := mdmatch.NewRuleSet(keys...)
//	ok, _ := rules.Match(instancePair, t1, t2)
//
// See examples/ for runnable end-to-end programs, docs/PAPER_MAP.md for
// how each paper construct maps onto the packages under internal/, and
// docs/ARCHITECTURE.md for the layer diagram.
package mdmatch

import (
	"io"
	"net/http"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/discover"
	"mdmatch/internal/engine"
	"mdmatch/internal/fellegi"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/mdlang"
	"mdmatch/internal/metrics"
	"mdmatch/internal/neighborhood"
	"mdmatch/internal/obs"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/semantics"
	"mdmatch/internal/similarity"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// --- Schemas and contexts (internal/schema) ---

// Relation is a named relation schema.
type Relation = schema.Relation

// Attribute is a named, typed column.
type Attribute = schema.Attribute

// Domain is an attribute value domain.
type Domain = schema.Domain

// Pair is a matching context (R1, R2).
type Pair = schema.Pair

// AttrList is an ordered attribute-name list.
type AttrList = schema.AttrList

// Side selects the left or right relation of a context.
type Side = schema.Side

// Sides of a matching context.
const (
	Left  = schema.Left
	Right = schema.Right
)

// NewRelation builds a relation schema.
func NewRelation(name string, attrs ...Attribute) (*Relation, error) {
	return schema.NewRelation(name, attrs...)
}

// StringsRelation builds a relation whose attributes are all strings.
func StringsRelation(name string, attrNames ...string) (*Relation, error) {
	return schema.Strings(name, attrNames...)
}

// NewPair builds a matching context from two relations (which may be the
// same relation, for deduplication within one table).
func NewPair(left, right *Relation) (Pair, error) { return schema.NewPair(left, right) }

// --- Dependencies and keys (internal/core) ---

// MD is a matching dependency.
type MD = core.MD

// NegativeMD is a must-not-match rule (the Section 8 extension).
type NegativeMD = core.NegativeMD

// Key is a key relative to a target (X1, X2 ‖ C).
type Key = core.Key

// Target is the pair of comparable lists (Y1, Y2) to identify.
type Target = core.Target

// AttrPair is a pair of comparable attributes.
type AttrPair = core.AttrPair

// Conjunct is one similarity test of an MD's LHS.
type Conjunct = core.Conjunct

// CostModel is the RCK quality model of Section 5.
type CostModel = core.CostModel

// Closure is the M array computed by the MDClosure algorithm.
type Closure = core.Closure

// P builds an attribute pair.
func P(left, right string) AttrPair { return core.P(left, right) }

// C builds a similarity conjunct.
func C(left string, op Operator, right string) Conjunct { return core.C(left, op, right) }

// EqC builds an equality conjunct.
func EqC(left, right string) Conjunct { return core.Eq(left, right) }

// NewMD validates and builds an MD.
func NewMD(ctx Pair, lhs []Conjunct, rhs []AttrPair) (MD, error) { return core.NewMD(ctx, lhs, rhs) }

// NewTarget validates and builds a target.
func NewTarget(ctx Pair, y1, y2 AttrList) (Target, error) { return core.NewTarget(ctx, y1, y2) }

// NewKey validates and builds a relative key.
func NewKey(ctx Pair, target Target, conjuncts []Conjunct) (Key, error) {
	return core.NewKey(ctx, target, conjuncts)
}

// Deduce decides the deduction problem Σ ⊨m ϕ (Theorem 4.1, O(n²+h³)).
func Deduce(sigma []MD, phi MD) (bool, error) { return core.Deduce(sigma, phi) }

// DeduceKey decides Σ ⊨m ψ for a relative key.
func DeduceKey(sigma []MD, key Key) (bool, error) { return core.DeduceKey(sigma, key) }

// MDClosure computes the closure of Σ and a hypothesis LHS (Figure 5).
func MDClosure(ctx Pair, sigma []MD, lhs []Conjunct) (*Closure, error) {
	return core.MDClosure(ctx, sigma, lhs)
}

// Explanation is a step-by-step derivation of a deduction.
type Explanation = core.Explanation

// Explain runs the deduction of ϕ from Σ and records a human-readable
// derivation (hypotheses, MD firings, axiom propagations).
func Explain(sigma []MD, phi MD) (*Explanation, error) { return core.Explain(sigma, phi) }

// FindRCKs derives up to m quality RCKs relative to the target
// (algorithm findRCKs, Figure 7). cm may be nil for the paper's default
// cost model.
func FindRCKs(ctx Pair, sigma []MD, target Target, m int, cm *CostModel) ([]Key, error) {
	return core.FindRCKs(ctx, sigma, target, m, cm)
}

// AllRCKs derives every RCK deducible from Σ (use with small Σ).
func AllRCKs(ctx Pair, sigma []MD, target Target, cm *CostModel) ([]Key, error) {
	return core.AllRCKs(ctx, sigma, target, cm)
}

// PruneSubsumed drops keys made redundant under operator subsumption.
func PruneSubsumed(keys []Key) []Key { return core.PruneSubsumed(keys) }

// DefaultCostModel returns the paper's experimental cost configuration.
func DefaultCostModel() *CostModel { return core.DefaultCostModel() }

// --- Similarity operators (internal/similarity) ---

// Operator is a similarity operator from Θ.
type Operator = similarity.Operator

// Registry is the operator set Θ available to parsing and reasoning.
type Registry = similarity.Registry

// Eq returns the equality operator.
func Eq() Operator { return similarity.Eq() }

// DL returns the paper's thresholded Damerau–Levenshtein operator ≈θ.
func DL(theta float64) Operator { return similarity.DL(theta) }

// JaroWinkler returns a thresholded Jaro–Winkler operator.
func JaroWinkler(theta float64) Operator { return similarity.JaroWinklerOp(theta) }

// SynonymOp wraps an operator with a constant-synonym table (Section 8
// extension).
func SynonymOp(base Operator, synonyms map[string]string) Operator {
	return similarity.SynonymOp(base, synonyms)
}

// DefaultRegistry returns the operators used throughout the paper.
func DefaultRegistry() *Registry { return similarity.DefaultRegistry() }

// Soundex returns the Soundex code of s (blocking encoder).
func Soundex(s string) string { return similarity.Soundex(s) }

// --- Rule language (internal/mdlang) ---

// RulesDoc is a parsed rule document.
type RulesDoc = mdlang.Document

// ParseRules parses rule-language text with the default operator
// registry.
func ParseRules(input string) (*RulesDoc, error) { return mdlang.Parse(input, nil) }

// ParseRulesWith parses rule-language text against a custom registry.
func ParseRulesWith(input string, reg *Registry) (*RulesDoc, error) {
	return mdlang.Parse(input, reg)
}

// FormatRules renders a document back to rule-language text.
func FormatRules(doc *RulesDoc) string { return mdlang.Format(doc) }

// --- Instances and enforcement (internal/record, internal/semantics) ---

// Tuple is a row with a temporary tuple id.
type Tuple = record.Tuple

// Instance is a set of tuples over one relation.
type Instance = record.Instance

// PairInstance is an instance D = (I1, I2) of a matching context.
type PairInstance = record.PairInstance

// EnforceResult reports a chase outcome.
type EnforceResult = semantics.EnforceResult

// ChaseStats counts the work of an enforcement chase (pairs examined,
// operator evaluations, rule firings).
type ChaseStats = metrics.ChaseStats

// NewInstance creates an empty instance.
func NewInstance(rel *Relation) *Instance { return record.NewInstance(rel) }

// NewPairInstance validates and builds an instance pair.
func NewPairInstance(ctx Pair, left, right *Instance) (*PairInstance, error) {
	return record.NewPairInstance(ctx, left, right)
}

// ReadCSV loads an instance written by Instance.WriteCSV.
func ReadCSV(rel *Relation, r io.Reader) (*Instance, error) { return record.ReadCSV(rel, r) }

// Enforce runs the MDs of Σ as matching rules on a copy of D until the
// result is stable (the chase of Section 3.1). D is not modified. The
// chase is candidate-driven: rules compile once into the exec kernel,
// candidate pairs seed from blocking-style joins over hash-encodable
// conjuncts, and firings re-enqueue only pairs they touched.
func Enforce(d *PairInstance, sigma []MD) (EnforceResult, error) { return semantics.Enforce(d, sigma) }

// EnforceFullScan is the quadratic reference chase (full pair rescan per
// pass). It returns exactly what Enforce returns — same stable instance,
// same Applications — at full-scan cost; it exists for validation and
// benchmarking.
func EnforceFullScan(d *PairInstance, sigma []MD) (EnforceResult, error) {
	return semantics.EnforceFullScan(d, sigma)
}

// IsStable reports whether (D, D) ⊨ Σ.
func IsStable(d *PairInstance, sigma []MD) (bool, error) { return semantics.IsStable(d, sigma) }

// Satisfies decides (D, D′) ⊨ md under the dynamic semantics.
func Satisfies(d, dPrime *PairInstance, md MD) (bool, error) {
	return semantics.Satisfies(d, dPrime, md)
}

// MatchByKey reports whether a tuple pair matches the LHS of a key.
func MatchByKey(d *PairInstance, key Key, t1, t2 *Tuple) (bool, error) {
	return semantics.MatchByKey(d, key, t1, t2)
}

// --- Matchers (internal/matching, fellegi, neighborhood, blocking) ---

// Field is one entry of a comparison vector.
type Field = matching.Field

// RuleSet applies keys as matching rules.
type RuleSet = matching.RuleSet

// FSMatcher is the Fellegi–Sunter statistical matcher with EM.
type FSMatcher = fellegi.Matcher

// FSModel is a fitted Fellegi–Sunter model.
type FSModel = fellegi.Model

// SNConfig configures a Sorted-Neighborhood run.
type SNConfig = neighborhood.Config

// SNPass is one sort-and-window sweep.
type SNPass = neighborhood.Pass

// KeySpec is a blocking/windowing key.
type KeySpec = blocking.KeySpec

// PairRef identifies a candidate or matched record pair by tuple ids.
type PairRef = metrics.Pair

// PairSet is a set of record pairs.
type PairSet = metrics.PairSet

// Quality holds precision/recall/F1.
type Quality = metrics.Quality

// BlockingQuality holds PC/RR.
type BlockingQuality = metrics.BlockingQuality

// NewRuleSet builds a rule set from keys.
func NewRuleSet(keys ...Key) *RuleSet { return matching.NewRuleSet(keys...) }

// FieldsFromKeys returns the union of the keys' conjuncts as comparison
// fields.
func FieldsFromKeys(keys []Key) []Field { return matching.FieldsFromKeys(keys) }

// TransitiveClosure closes a match set over match chains.
func TransitiveClosure(ms *PairSet) *PairSet { return matching.TransitiveClosure(ms) }

// NewPairSet builds a pair set.
func NewPairSet(pairs ...PairRef) *PairSet { return metrics.NewPairSet(pairs...) }

// Evaluate compares found matches against true matches.
func Evaluate(found, truth *PairSet) Quality { return metrics.Evaluate(found, truth) }

// EvaluateBlocking computes PC/RR of a candidate set.
func EvaluateBlocking(candidates, truth *PairSet, totalPairs int) BlockingQuality {
	return metrics.EvaluateBlocking(candidates, truth, totalPairs)
}

// NewKeySpec builds a blocking key over attribute pairs (identity
// encoding).
func NewKeySpec(pairs ...AttrPair) KeySpec { return blocking.NewKeySpec(pairs...) }

// KeySpecFromRCKs derives a blocking key from RCKs, Soundex-encoding the
// named attributes.
func KeySpecFromRCKs(keys []Key, maxFields int, soundexAttrs ...string) KeySpec {
	return blocking.FromRCKs(keys, maxFields, soundexAttrs...)
}

// Block partitions by key and returns within-block cross pairs.
func Block(d *PairInstance, ks KeySpec) (*PairSet, error) { return blocking.Block(d, ks) }

// Window sorts by key and returns sliding-window cross pairs.
func Window(d *PairInstance, ks KeySpec, w int) (*PairSet, error) { return blocking.Window(d, ks, w) }

// OrientSelfMatch drops identity pairs and orients each unordered pair
// once (Left < Right); use for self-match (deduplication) candidates.
func OrientSelfMatch(ps *PairSet) *PairSet { return blocking.OrientSelfMatch(ps) }

// RunSN runs the Sorted-Neighborhood matcher.
func RunSN(d *PairInstance, cfg SNConfig) (*neighborhood.Result, error) {
	return neighborhood.Run(d, cfg)
}

// SNBaselineRules returns the 25-rule hand-written equational theory
// over the generated credit/billing schemas.
func SNBaselineRules(ctx Pair, target Target) []Key {
	return neighborhood.BaselineRules(ctx, target)
}

// --- Serving engine (internal/engine) ---

// Plan is a compiled match plan: rule keys with resolved columns and
// operators, deduplicated comparison fields, and precomputed blocking
// key encoders. Compile once, serve many times.
type Plan = engine.Plan

// Engine serves matching queries against a sharded in-memory blocking
// index; all methods are safe for concurrent use.
type Engine = engine.Engine

// EngineOption configures NewEngine.
type EngineOption = engine.Option

// MatchResult is the verdict of one engine query.
type MatchResult = engine.Result

// EngineStats is a snapshot of engine counters (pairs compared,
// candidates pruned, reduction ratio).
type EngineStats = engine.Stats

// CompilePlan compiles keys (applied as matching rules) and blocking key
// specs into an executable match plan. Optional negative rules veto
// matches.
func CompilePlan(ctx Pair, keys []Key, blockKeys []KeySpec, negative ...NegativeMD) (*Plan, error) {
	return engine.Compile(ctx, keys, blockKeys, negative...)
}

// NewEngine builds a serving engine for a compiled plan. Populate it
// with Engine.Load (bulk, concurrent) or Engine.Add (incremental).
func NewEngine(plan *Plan, opts ...EngineOption) (*Engine, error) {
	return engine.New(plan, opts...)
}

// EngineWorkers sets the engine's worker-pool size (0 = GOMAXPROCS).
func EngineWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// EngineShards sets the shard count of the engine's index and store.
func EngineShards(n int) EngineOption { return engine.WithShards(n) }

// EngineStream attaches a streaming enforcer: records added to the
// engine are also enforced incrementally, and the engine answers
// cluster queries about them. The enforcer's relation must be the
// plan's left relation.
func EngineStream(enf *StreamEnforcer) EngineOption { return engine.WithStream(enf) }

// --- Durability (internal/store) ---

// Store is the durability state of one data directory: a segmented,
// checksummed write-ahead log recording every mutation plus snapshots
// of the enforcement and serving state. Attach one to an engine with
// EngineStore: construction recovers the directory's persisted state
// (newest valid snapshot + the WAL suffix replayed in original
// insertion order) and every later mutation is journaled, so a restart
// resumes exactly where the previous process stopped.
type Store = store.Store

// StoreOption configures OpenStore.
type StoreOption = store.Option

// StoreNoSync disables the per-append WAL fsync: orders of magnitude
// more append throughput, at the cost of losing the last few records on
// an OS crash (a process crash loses nothing).
func StoreNoSync() StoreOption { return store.WithNoSync() }

// StoreSegmentBytes sets the WAL segment rotation threshold.
func StoreSegmentBytes(n int64) StoreOption { return store.WithSegmentBytes(n) }

// StoreKeepSnapshots sets how many most-recent snapshots survive
// garbage collection (default 2: the newest plus one fallback).
func StoreKeepSnapshots(n int) StoreOption { return store.WithKeepSnapshots(n) }

// OpenStore opens (or creates) a durability directory for the given
// rule configuration. The plan's keys and blocking specs plus the
// enforcer's Σ and cluster rules are hashed into a fingerprint carried
// by every WAL segment and snapshot; a directory written under
// different rules refuses to open, because replaying its insertions
// under new rules would silently produce a different chase.
func OpenStore(dir string, plan *Plan, enf *StreamEnforcer, opts ...StoreOption) (*Store, error) {
	return store.Open(dir, engine.Fingerprint(plan, enf), opts...)
}

// EngineStore attaches a durability store to a new engine (requires
// EngineStream with a fresh enforcer). See Store and the runnable
// ExampleOpenStore for the full boot-mutate-snapshot-recover cycle.
func EngineStore(st *Store) EngineOption { return engine.WithStore(st) }

// --- Observability (internal/obs) ---

// MetricsRegistry is a zero-dependency metric registry rendering the
// Prometheus text exposition format: atomic counters, gauges and
// histograms plus scrape-time collected families. One registry
// instruments one process; serve it with MetricsHandler. (The name
// avoids the operator Registry alias above.)
type MetricsRegistry = obs.Registry

// NewRegistry creates an empty metrics registry. Attach the layer
// observers (EngineObserver, StreamObserver, StoreObserver) to populate
// it; see the runnable ExampleNewRegistry.
func NewRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EngineObserver instruments an engine on r: match/batch latency
// histograms plus scrape-time views over the engine's own counters
// (queries, candidates, index occupancy, verdict-cache pair decisions).
// Pass the result to NewEngine. A nil-observer engine pays nothing; an
// instrumented one pays one clock read and a few atomic adds per query.
func EngineObserver(r *MetricsRegistry) EngineOption {
	return engine.WithObserver(obs.NewEngineObserver(r))
}

// StreamObserver instruments a streaming enforcer on r: per-insert
// chase latency and frontier histograms plus scrape-time views over the
// enforcer's counters — records, clusters, chase totals, per-rule
// firing counters keyed by Σ index, verdict-cache traffic.
func StreamObserver(r *MetricsRegistry) StreamOption {
	return stream.WithObserver(obs.NewStreamObserver(r))
}

// StoreObserver instruments a durability store on r: WAL append and
// snapshot latency histograms plus scrape-time views over the log
// positions (LSNs, segment count, snapshot size/age, recovery replay
// progress). Pass the result to OpenStore.
func StoreObserver(r *MetricsRegistry) StoreOption {
	return store.WithObserver(obs.NewStoreObserver(r))
}

// MetricsHandler serves r in Prometheus text exposition format
// (Content-Type text/plain; version=0.0.4). Mount it on GET /metrics.
func MetricsHandler(r *MetricsRegistry) http.Handler { return r.Handler() }

// --- Incremental enforcement (internal/stream) ---

// StreamEnforcer enforces Σ incrementally over a growing instance: each
// inserted record seeds only the chase frontier its blocking keys
// touch, chase state (interned dictionaries, verdict memos, join
// indexes, clusters) persists across insertions, and every insertion's
// outcome is bit-identical to a from-scratch Enforce on (stable
// instance ∪ new record). See the internal/stream package comment for
// the precise contract and why online enforcement is order-sensitive.
type StreamEnforcer = stream.Enforcer

// StreamInsert reports one streaming insertion: the record's cluster,
// the rules it fired, and the chase counters of the step.
type StreamInsert = stream.InsertResult

// StreamBatch reports one batch insertion.
type StreamBatch = stream.BatchResult

// StreamCluster is one record cluster (id = smallest member record id).
type StreamCluster = stream.Cluster

// StreamStats is a snapshot of a StreamEnforcer's cumulative counters.
type StreamStats = stream.Stats

// StreamOption configures NewStreamEnforcer.
type StreamOption = stream.Option

// StreamClusterRules restricts cluster linking to the given Σ indices:
// only a match of one of these record-identity rules clusters two
// records; the other rules still enforce (repair) attribute values.
func StreamClusterRules(indices ...int) StreamOption { return stream.ClusterRules(indices...) }

// NewStreamEnforcer builds an incremental enforcement engine for a
// self-match (deduplication) context: ctx.Left and ctx.Right must be
// the same relation. The instance starts empty; feed it with Insert /
// InsertBatch, or attach it to an Engine via EngineStream.
func NewStreamEnforcer(ctx Pair, sigma []MD, opts ...StreamOption) (*StreamEnforcer, error) {
	return stream.New(ctx, sigma, opts...)
}

// CreditDedupMDs returns self-match rules for deduplicating the
// generated credit relation against itself (ctx must be a self-match
// pair over the credit schema). CreditDedupClusterRules selects the
// subset whose match means "same holder".
func CreditDedupMDs(ctx Pair) []MD { return gen.DedupMDs(ctx) }

// CreditDedupClusterRules returns the indices into CreditDedupMDs of
// the record-identity rules, for StreamClusterRules.
func CreditDedupClusterRules() []int { return gen.DedupClusterRules() }

// --- Data generation (internal/gen) ---

// GenConfig controls synthetic dataset generation.
type GenConfig = gen.Config

// GenDataset is a generated dataset with ground truth.
type GenDataset = gen.Dataset

// DefaultGenConfig returns the paper's dirtying protocol for K holders.
func DefaultGenConfig(k int) GenConfig { return gen.DefaultConfig(k) }

// GenerateDataset builds a synthetic credit/billing dataset.
func GenerateDataset(cfg GenConfig) (*GenDataset, error) { return gen.Generate(cfg) }

// CreditBillingMDs returns the 7 card-holder MDs of the evaluation.
func CreditBillingMDs(ctx Pair) []MD { return gen.HolderMDs(ctx) }

// CreditBillingTarget returns the 11-attribute identification target.
func CreditBillingTarget(ctx Pair) Target { return gen.Target(ctx) }

// --- MD discovery from samples (internal/discover, §7/§8 extension) ---

// DiscoverSample is a labeled sample of tuple pairs for MD mining.
type DiscoverSample = discover.Sample

// DiscoverConfig controls MD mining.
type DiscoverConfig = discover.Config

// DiscoveredMD is a mined candidate LHS with its sample statistics.
type DiscoveredMD = discover.Candidate

// MineMDs discovers minimal high-confidence LHSs from a labeled sample
// (levelwise, in the style of FD discovery). Feed the result to ToMDs
// and then FindRCKs — the "discover then deduce" pipeline of Section 7.
func MineMDs(sample DiscoverSample, cfg DiscoverConfig) ([]DiscoveredMD, error) {
	return discover.Mine(sample, cfg)
}

// DiscoveredToMDs converts mined candidates into MDs for a target.
func DiscoveredToMDs(ctx Pair, target Target, candidates []DiscoveredMD) ([]MD, error) {
	return discover.ToMDs(ctx, target, candidates)
}
