// Benchmarks regenerating every figure of the paper's evaluation
// (Section 6), plus micro-benchmarks of the reasoning algorithms and the
// ablations called out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Figure-level benches use reduced dataset scales so the whole suite
// finishes in minutes; cmd/matchbench -scale paper runs the full
// Section 6 parameters and EXPERIMENTS.md records the outcomes.
package mdmatch

import (
	"fmt"
	"sync"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/experiments"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/neighborhood"
	"mdmatch/internal/similarity"
)

// --- Figure 8(a): findRCKs runtime vs card(Σ) ---

func BenchmarkFig8a_FindRCKs(b *testing.B) {
	for _, card := range []int{200, 600, 1000, 2000} {
		for _, yLen := range []int{6, 12} {
			b.Run(fmt.Sprintf("MDs%d_Y%d", card, yLen), func(b *testing.B) {
				ctx, target := gen.ScalabilitySchemas(yLen, 6)
				sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: 1, Count: card})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.FindRCKs(ctx, sigma, target, 20, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 8(b): findRCKs runtime vs m ---

func BenchmarkFig8b_FindRCKs(b *testing.B) {
	ctx, target := gen.ScalabilitySchemas(10, 6)
	sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: 1, Count: 2000})
	for _, m := range []int{5, 20, 50} {
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindRCKs(ctx, sigma, target, m, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSummary_RCK50From2000MDs is the paper's headline scalability
// claim: "it takes less than 100 seconds to deduce 50 quality RCKs from
// a set of 2000 MDs" (Section 1 and 6.3).
func BenchmarkSummary_RCK50From2000MDs(b *testing.B) {
	ctx, target := gen.ScalabilitySchemas(12, 6)
	sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: 1, Count: 2000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys, err := core.FindRCKs(ctx, sigma, target, 50, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(keys) == 0 {
			b.Fatal("no keys")
		}
	}
}

// --- Figure 8(c): exhaustive RCK enumeration from small Σ ---

func BenchmarkFig8c_AllRCKs(b *testing.B) {
	for _, card := range []int{10, 40} {
		b.Run(fmt.Sprintf("MDs%d", card), func(b *testing.B) {
			ctx, target := gen.ScalabilitySchemas(8, 6)
			// Same calibrated generator shape as experiments.Fig8c (see
			// the EXPERIMENTS.md calibration note): uncalibrated rule
			// sets compose combinatorially and exhaustive enumeration
			// explodes.
			sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{
				Seed: 1, Count: card, TargetBias: 0.10, MaxLHS: 2,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.AllRCKs(ctx, sigma, target, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- MDClosure micro-benchmarks and the propagation ablation ---

func closureInput(card int) (Pair, []MD, []Conjunct) {
	ctx, target := gen.ScalabilitySchemas(10, 6)
	sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: 1, Count: card})
	lhs := []Conjunct{
		core.Eq(ctx.Left.Attr(0).Name, ctx.Right.Attr(0).Name),
		core.C(ctx.Left.Attr(1).Name, similarity.DL(0.8), ctx.Right.Attr(1).Name),
	}
	return ctx, sigma, lhs
}

func BenchmarkMDClosure(b *testing.B) {
	for _, card := range []int{200, 1000, 2000} {
		ctx, sigma, lhs := closureInput(card)
		b.Run(fmt.Sprintf("event_driven_MDs%d", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MDClosure(ctx, sigma, lhs); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Ablation: the paper-literal repeat-scan main loop with the
		// Figure 6 Propagate cases.
		b.Run(fmt.Sprintf("literal_MDs%d", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MDClosureLiteral(ctx, sigma, lhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Shared dataset setups for the matching figures ---

var (
	setupMu    sync.Mutex
	setupCache = map[int]*experiments.Setup{}
)

func cachedSetup(b *testing.B, k int) *experiments.Setup {
	b.Helper()
	setupMu.Lock()
	defer setupMu.Unlock()
	if s, ok := setupCache[k]; ok {
		return s
	}
	s, err := experiments.NewSetup(k, 1)
	if err != nil {
		b.Fatal(err)
	}
	setupCache[k] = s
	return s
}

// --- Figure 9(a-c): Fellegi–Sunter, FS vs FSrck ---

func BenchmarkFig9_FellegiSunter(b *testing.B) {
	for _, k := range []int{1000, 4000} {
		for _, method := range []string{"FS", "FSrck"} {
			b.Run(fmt.Sprintf("%s_K%d", method, k), func(b *testing.B) {
				s := cachedSetup(b, k)
				fields := s.FSFields()
				if method == "FSrck" {
					fields = s.FSrckFields()
				}
				b.ResetTimer()
				var lastP, lastR float64
				for i := 0; i < b.N; i++ {
					row, err := s.RunFS(method, fields)
					if err != nil {
						b.Fatal(err)
					}
					lastP, lastR = row.Precision, row.Recall
				}
				b.ReportMetric(lastP, "precision")
				b.ReportMetric(lastR, "recall")
			})
		}
	}
}

// --- Figure 10(a-c): Sorted Neighborhood, SN vs SNrck ---

func BenchmarkFig10_SortedNeighborhood(b *testing.B) {
	for _, k := range []int{1000, 4000} {
		for _, method := range []string{"SN", "SNrck"} {
			b.Run(fmt.Sprintf("%s_K%d", method, k), func(b *testing.B) {
				s := cachedSetup(b, k)
				var rules *matching.RuleSet
				if method == "SN" {
					rules = matching.NewRuleSet(neighborhood.BaselineRules(s.Dataset.Ctx, s.Target)...)
				} else {
					rules = matching.NewRuleSet(s.RCKs...)
				}
				b.ResetTimer()
				var lastP, lastR float64
				for i := 0; i < b.N; i++ {
					row, err := s.RunSN(method, rules)
					if err != nil {
						b.Fatal(err)
					}
					lastP, lastR = row.Precision, row.Recall
				}
				b.ReportMetric(lastP, "precision")
				b.ReportMetric(lastR, "recall")
			})
		}
	}
}

// --- Figures 9(d)/10(d): blocking PC and RR ---

func BenchmarkFigBlocking(b *testing.B) {
	for _, key := range []string{"RCK", "manual"} {
		b.Run(fmt.Sprintf("%s_K2000", key), func(b *testing.B) {
			s := cachedSetup(b, 2000)
			spec := experiments.ManualBlockingKey()
			if key == "RCK" {
				spec = s.RCKBlockingKey()
			}
			b.ResetTimer()
			var lastPC, lastRR float64
			for i := 0; i < b.N; i++ {
				cands, err := Block(s.D, spec)
				if err != nil {
					b.Fatal(err)
				}
				bq := EvaluateBlocking(cands, s.Truth, s.Dataset.TotalPairs())
				lastPC, lastRR = bq.PC(), bq.RR()
			}
			b.ReportMetric(lastPC, "PC")
			b.ReportMetric(lastRR, "RR")
		})
	}
}

// BenchmarkFigWindowing covers the windowing variant of Exp-4 (reported
// in the text of Section 6.2).
func BenchmarkFigWindowing(b *testing.B) {
	for _, key := range []string{"RCK", "manual"} {
		b.Run(fmt.Sprintf("%s_K2000", key), func(b *testing.B) {
			s := cachedSetup(b, 2000)
			spec := experiments.ManualBlockingKey()
			if key == "RCK" {
				spec = s.RCKBlockingKey()
			}
			b.ResetTimer()
			var lastPC, lastRR float64
			for i := 0; i < b.N; i++ {
				cands, err := Window(s.D, spec, 10)
				if err != nil {
					b.Fatal(err)
				}
				bq := EvaluateBlocking(cands, s.Truth, s.Dataset.TotalPairs())
				lastPC, lastRR = bq.PC(), bq.RR()
			}
			b.ReportMetric(lastPC, "PC")
			b.ReportMetric(lastRR, "RR")
		})
	}
}

// --- Ablation: single RCK vs union of top-5 (Section 6.2 observes that
// a single RCK lowers recall; the union mediates it) ---

func BenchmarkAblation_SingleVsUnionRCK(b *testing.B) {
	s := cachedSetup(b, 1000)
	configs := map[string][]Key{
		"single": s.RCKs[:1],
		"union5": s.RCKs,
	}
	for name, keys := range configs {
		b.Run(name, func(b *testing.B) {
			rules := matching.NewRuleSet(keys...)
			b.ResetTimer()
			var lastR float64
			for i := 0; i < b.N; i++ {
				row, err := s.RunSN("SN-"+name, rules)
				if err != nil {
					b.Fatal(err)
				}
				lastR = row.Recall
			}
			b.ReportMetric(lastR, "recall")
		})
	}
}

// --- Ablation: cost-ordered vs unordered findRCKs (the quality model's
// job is diversity; runtime should be comparable) ---

func BenchmarkAblation_CostModel(b *testing.B) {
	ctx, target := gen.ScalabilitySchemas(10, 6)
	sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: 1, Count: 1000})
	b.Run("diversity_weighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cm := core.DefaultCostModel() // w1=1: counters steer selection
			if _, err := core.FindRCKs(ctx, sigma, target, 20, cm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unweighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cm := &core.CostModel{W1: 0, W2: 0, W3: 0} // cost ≡ 0: no steering
			if _, err := core.FindRCKs(ctx, sigma, target, 20, cm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Enforcement chase: worklist vs quadratic reference ---

func BenchmarkEnforceChase(b *testing.B) {
	ds, err := gen.Generate(gen.DefaultConfig(60))
	if err != nil {
		b.Fatal(err)
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()
	b.Run("worklist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Enforce(d, sigma); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EnforceFullScan(d, sigma); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Similarity micro-benchmarks ---

func BenchmarkSimilarity(b *testing.B) {
	a, c := "10 Oak Street, MH, NJ 07974", "10 Oak Street, MH, NJ 07976"
	b.Run("DamerauLevenshtein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.DamerauLevenshtein(a, c)
		}
	})
	b.Run("Jaro", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.Jaro(a, c)
		}
	})
	b.Run("JaccardQGram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.JaccardQGram(a, c, 2)
		}
	})
	b.Run("Soundex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.Soundex("Clifford")
		}
	})
}

// --- Data generator throughput ---

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := gen.DefaultConfig(1000)
		cfg.Seed = int64(i + 1)
		if _, err := gen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
