package mdmatch

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/engine"
	"mdmatch/internal/experiments"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/semantics"
	"mdmatch/internal/semantics/seedref"
)

// TestWriteExecBenchReport measures every execution path of the exec
// kernel against its pre-kernel (seed) implementation and writes
// BENCH_exec.json, the repo's old-vs-new record (wired up as
// `make bench-exec`). It is skipped unless BENCH_EXEC_OUT names the
// output file, so regular test runs stay fast.
//
// The seed baselines are verbatim copies of the pre-kernel code paths:
// interpreted per-pair evaluation through Instance.Get with full
// rescans and flush-per-firing (chase), and per-pair name resolution
// (rule set). The chase section also cross-validates that all three
// chase implementations produce identical stable instances.
func TestWriteExecBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_EXEC_OUT")
	if out == "" {
		t.Skip("set BENCH_EXEC_OUT=<path> to write the kernel throughput report")
	}
	k := 1000
	if v := os.Getenv("BENCH_EXEC_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_EXEC_K %q: %v", v, err)
		}
		k = n
	}

	report := execBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		CorpusK:     k,
	}

	// --- Chase: seed interpreted full scan vs compiled full scan vs
	// worklist, all on the default gen dataset ---
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()
	report.LeftRecords = ds.Credit.Len()
	report.RightRecords = ds.Billing.Len()

	timeChase := func(f func(*record.PairInstance, []core.MD) (semantics.EnforceResult, error)) (chaseMeasure, semantics.EnforceResult) {
		var res semantics.EnforceResult
		var err error
		secs, allocs := measureAllocs(func() { res, err = f(d, sigma) })
		if err != nil {
			t.Fatal(err)
		}
		return chaseMeasure{
			Seconds:        secs,
			AllocsPerOp:    float64(allocs),
			Applications:   res.Applications,
			Passes:         res.Passes,
			PairsExamined:  res.Stats.PairsExamined,
			LHSEvaluations: res.Stats.LHSEvaluations,
		}, res
	}
	var seedRes seedref.Result
	seedSecs, seedAllocs := measureAllocs(func() {
		var err error
		seedRes, err = seedref.Enforce(d, sigma)
		if err != nil {
			t.Fatal(err)
		}
	})
	seedM := chaseMeasure{
		Seconds:      seedSecs,
		AllocsPerOp:  float64(seedAllocs),
		Applications: seedRes.Applications,
		Passes:       seedRes.Passes,
	}
	fullM, fullRes := timeChase(semantics.EnforceFullScan)
	wlM, wlRes := timeChase(semantics.Enforce)
	// The frozen seed copy does not count stats; fill from the compiled
	// scan (identical visit structure).
	seedM.PairsExamined = fullM.PairsExamined
	seedM.LHSEvaluations = fullM.LHSEvaluations

	assertSameChase(t, "fullscan-vs-seed", fullRes, seedRes)
	assertSameChase(t, "worklist-vs-seed", wlRes, seedRes)
	report.Chase = chaseSection{
		SeedFullScan:     seedM,
		CompiledFullScan: fullM,
		Worklist:         wlM,
		SpeedupVsSeed:    seedM.Seconds / wlM.Seconds,
		SpeedupVsFull:    fullM.Seconds / wlM.Seconds,
	}

	// --- Rule set: interpreted seed matcher vs compiled kernel over the
	// blocked candidates of the derived RCKs ---
	setup, err := experiments.NewSetup(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := blocking.Block(setup.D, setup.RCKBlockingKey())
	if err != nil {
		t.Fatal(err)
	}
	rules := matching.NewRuleSet(setup.RCKs...)

	var seedMatches *metrics.PairSet
	seedRSecs, seedRAllocs := measureAllocs(func() {
		var err error
		seedMatches, err = seedMatchCandidates(setup.D, setup.RCKs, cands)
		if err != nil {
			t.Fatal(err)
		}
	})
	var compiledMatches *metrics.PairSet
	compiledSecs, compiledAllocs := measureAllocs(func() {
		var err error
		compiledMatches, err = rules.MatchCandidates(setup.D, cands)
		if err != nil {
			t.Fatal(err)
		}
	})
	if seedMatches.Len() != compiledMatches.Len() ||
		seedMatches.IntersectCount(compiledMatches) != seedMatches.Len() {
		t.Fatalf("rule set divergence: seed %d matches, compiled %d", seedMatches.Len(), compiledMatches.Len())
	}
	perCand := func(secs float64, allocs uint64) pathMeasure {
		return pathMeasure{
			Seconds:     secs,
			PerSecond:   float64(cands.Len()) / secs,
			AllocsPerOp: float64(allocs) / float64(cands.Len()),
		}
	}
	report.RuleSet = ruleSetSection{
		Candidates: cands.Len(),
		Matches:    compiledMatches.Len(),
		Seed:       perCand(seedRSecs, seedRAllocs),
		Compiled:   perCand(compiledSecs, compiledAllocs),
		Speedup:    seedRSecs / compiledSecs,
	}

	// --- Values: the interned paths against their string-path twins.
	// The interned matcher dictionary-encodes both sides once and then
	// evaluates candidates on value IDs; the matched set must be
	// identical. The second (warm) measurement shows the steady-state
	// cost once every distinct value pair's verdict is cached — the
	// serving regime the interner is built for.
	im, err := rules.CompileInterned(setup.D)
	if err != nil {
		t.Fatal(err)
	}
	var internedMatches *metrics.PairSet
	coldSecs, coldAllocs := measureAllocs(func() {
		var err error
		internedMatches, err = im.MatchCandidates(cands)
		if err != nil {
			t.Fatal(err)
		}
	})
	warmSecs, warmAllocs := measureAllocs(func() {
		var err error
		internedMatches, err = im.MatchCandidates(cands)
		if err != nil {
			t.Fatal(err)
		}
	})
	rulesetEquivalent := internedMatches.Len() == compiledMatches.Len() &&
		internedMatches.IntersectCount(compiledMatches) == compiledMatches.Len()
	if !rulesetEquivalent {
		t.Fatalf("interned rule set divergence: interned %d matches, compiled %d", internedMatches.Len(), compiledMatches.Len())
	}
	report.Values = valuesSection{
		RulesetInternedCold:   perCand(coldSecs, coldAllocs),
		RulesetInternedWarm:   perCand(warmSecs, warmAllocs),
		RulesetSpeedupWarm:    compiledSecs / warmSecs,
		RulesetMatchesStrings: rulesetEquivalent,
		ChaseMatchesSeedref:   true, // assertSameChase above would have failed otherwise
		ChaseSeedApplications: seedRes.Applications,
		ChaseSeedPasses:       seedRes.Passes,
	}

	// --- Engine: MatchBatch throughput through the same kernel ---
	plan, err := engine.Compile(setup.Dataset.Ctx, setup.RCKs, []blocking.KeySpec{setup.RCKBlockingKey()})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(plan, engine.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(setup.Dataset.Credit); err != nil {
		t.Fatal(err)
	}
	batch := make([][]string, setup.Dataset.Billing.Len())
	for i, tp := range setup.Dataset.Billing.Tuples {
		batch[i] = tp.Values
	}
	if _, err := eng.MatchBatch(batch); err != nil { // warm-up
		t.Fatal(err)
	}
	engSecs, engAllocs := measureAllocs(func() {
		if _, err := eng.MatchBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	report.Engine = engineSection{
		Queries:     len(batch),
		Workers:     1,
		Seconds:     engSecs,
		PerSecond:   float64(len(batch)) / engSecs,
		AllocsPerOp: float64(engAllocs) / float64(len(batch)),
	}

	// Equivalence of the engine path on interned data: the engine (whose
	// store and rule evaluation run on dictionary-encoded records) must
	// produce exactly the pairs the string-path rule set produces over
	// the same blocking keys and rules.
	_, engPairs, err := eng.MatchInstance(setup.Dataset.Billing)
	if err != nil {
		t.Fatal(err)
	}
	engineEquivalent := engPairs.Len() == compiledMatches.Len() &&
		engPairs.IntersectCount(compiledMatches) == compiledMatches.Len()
	if !engineEquivalent {
		t.Fatalf("engine divergence on interned data: engine %d pairs, rule set %d", engPairs.Len(), compiledMatches.Len())
	}
	report.Values.EngineMatchesStrings = engineEquivalent

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (chase speedup vs seed: %.1fx)", out, report.Chase.SpeedupVsSeed)
}

type execBenchReport struct {
	GeneratedAt  string         `json:"generated_at"`
	GoVersion    string         `json:"go_version"`
	MaxProcs     int            `json:"gomaxprocs"`
	CorpusK      int            `json:"corpus_k"`
	LeftRecords  int            `json:"left_records"`
	RightRecords int            `json:"right_records"`
	Chase        chaseSection   `json:"chase"`
	RuleSet      ruleSetSection `json:"ruleset"`
	Values       valuesSection  `json:"values"`
	Engine       engineSection  `json:"engine"`
}

type chaseMeasure struct {
	Seconds        float64 `json:"seconds"`
	AllocsPerOp    float64 `json:"allocs_per_op"` // one op = one enforcement run
	Applications   int     `json:"applications"`
	Passes         int     `json:"passes"`
	PairsExamined  int64   `json:"pairs_examined"`
	LHSEvaluations int64   `json:"lhs_evaluations"`
}

type chaseSection struct {
	SeedFullScan     chaseMeasure `json:"seed_full_scan"`
	CompiledFullScan chaseMeasure `json:"compiled_full_scan"`
	Worklist         chaseMeasure `json:"worklist"`
	SpeedupVsSeed    float64      `json:"worklist_speedup_vs_seed"`
	SpeedupVsFull    float64      `json:"worklist_speedup_vs_compiled_full_scan"`
}

type pathMeasure struct {
	Seconds     float64 `json:"seconds"`
	PerSecond   float64 `json:"per_second"`
	AllocsPerOp float64 `json:"allocs_per_op"` // one op = one candidate pair
}

type ruleSetSection struct {
	Candidates int         `json:"candidates"`
	Matches    int         `json:"matches"`
	Seed       pathMeasure `json:"seed_interpreted"`
	Compiled   pathMeasure `json:"compiled_kernel"`
	Speedup    float64     `json:"speedup"`
}

// valuesSection records the interned value store's paths against their
// string-path twins: equivalence cross-checks (same matches, and — via
// assertSameChase — same applications, passes and stable instance as
// seedref) plus cold/warm interned rule-set measurements.
type valuesSection struct {
	RulesetInternedCold   pathMeasure `json:"ruleset_interned_cold"`
	RulesetInternedWarm   pathMeasure `json:"ruleset_interned_warm"`
	RulesetSpeedupWarm    float64     `json:"ruleset_interned_warm_speedup_vs_compiled"`
	RulesetMatchesStrings bool        `json:"ruleset_interned_matches_string_path"`
	EngineMatchesStrings  bool        `json:"engine_interned_matches_string_path"`
	ChaseMatchesSeedref   bool        `json:"worklist_matches_seedref"`
	ChaseSeedApplications int         `json:"seedref_applications"`
	ChaseSeedPasses       int         `json:"seedref_passes"`
}

type engineSection struct {
	Queries     int     `json:"queries"`
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	PerSecond   float64 `json:"queries_per_second"`
	AllocsPerOp float64 `json:"allocs_per_op"` // one op = one query
}

// measureAllocs runs fn once, returning its wall time and the heap
// allocations it performed (the allocs_per_op inputs of this report).
// A GC up front keeps collection pressure from earlier sections out of
// the short measurements.
func measureAllocs(fn func()) (secs float64, allocs uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	secs = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return secs, after.Mallocs - before.Mallocs
}

func assertSameChase(t *testing.T, label string, got semantics.EnforceResult, want seedref.Result) {
	t.Helper()
	if got.Applications != want.Applications || got.Passes != want.Passes {
		t.Fatalf("%s: applications/passes = %d/%d, want %d/%d",
			label, got.Applications, got.Passes, want.Applications, want.Passes)
	}
	same := func(a, b *record.Instance) {
		t.Helper()
		for i, ta := range a.Tuples {
			tb := b.Tuples[i]
			for j := range ta.Values {
				if ta.Values[j] != tb.Values[j] {
					t.Fatalf("%s: t%d[%d] = %q vs %q", label, ta.ID, j, ta.Values[j], tb.Values[j])
				}
			}
		}
	}
	same(got.Instance.Left, want.Instance.Left)
	same(got.Instance.Right, want.Instance.Right)
}

// --- seed baselines ---
//
// The chase baseline is seedref.Enforce, the frozen verbatim copy of
// the pre-kernel implementation shared with the equivalence property
// tests (internal/semantics/seedref). The rule-set baseline below is
// the seed RuleSet.Match, verbatim.

// seedMatchCandidates is the seed rule-set matcher: per-pair interpreted
// conjunct evaluation through Instance.Get.
func seedMatchCandidates(d *record.PairInstance, keys []core.Key, candidates *metrics.PairSet) (*metrics.PairSet, error) {
	matchConjuncts := func(cs []core.Conjunct, t1, t2 *record.Tuple) (bool, error) {
		for _, c := range cs {
			v1, err := d.Left.Get(t1, c.Pair.Left)
			if err != nil {
				return false, err
			}
			v2, err := d.Right.Get(t2, c.Pair.Right)
			if err != nil {
				return false, err
			}
			if !c.Op.Similar(v1, v2) {
				return false, nil
			}
		}
		return true, nil
	}
	out := metrics.NewPairSet()
	for _, p := range candidates.Pairs() {
		t1, ok := d.Left.ByID(p.Left)
		if !ok {
			return nil, fmt.Errorf("missing left tuple %d", p.Left)
		}
		t2, ok := d.Right.ByID(p.Right)
		if !ok {
			return nil, fmt.Errorf("missing right tuple %d", p.Right)
		}
		for _, k := range keys {
			m, err := matchConjuncts(k.Conjuncts, t1, t2)
			if err != nil {
				return nil, err
			}
			if m {
				out.Add(p)
				break
			}
		}
	}
	return out, nil
}
