package mdmatch

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/engine"
	"mdmatch/internal/experiments"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/semantics"
	"mdmatch/internal/semantics/seedref"
)

// TestWriteExecBenchReport measures every execution path of the exec
// kernel against its pre-kernel (seed) implementation and writes
// BENCH_exec.json, the repo's old-vs-new record (wired up as
// `make bench-exec`). It is skipped unless BENCH_EXEC_OUT names the
// output file, so regular test runs stay fast.
//
// The seed baselines are verbatim copies of the pre-kernel code paths:
// interpreted per-pair evaluation through Instance.Get with full
// rescans and flush-per-firing (chase), and per-pair name resolution
// (rule set). The chase section also cross-validates that all three
// chase implementations produce identical stable instances.
func TestWriteExecBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_EXEC_OUT")
	if out == "" {
		t.Skip("set BENCH_EXEC_OUT=<path> to write the kernel throughput report")
	}
	k := 1000
	if v := os.Getenv("BENCH_EXEC_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_EXEC_K %q: %v", v, err)
		}
		k = n
	}

	report := execBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		CorpusK:     k,
	}

	// --- Chase: seed interpreted full scan vs compiled full scan vs
	// worklist, all on the default gen dataset ---
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()
	report.LeftRecords = ds.Credit.Len()
	report.RightRecords = ds.Billing.Len()

	timeChase := func(f func(*record.PairInstance, []core.MD) (semantics.EnforceResult, error)) (chaseMeasure, semantics.EnforceResult) {
		start := time.Now()
		res, err := f(d, sigma)
		if err != nil {
			t.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		return chaseMeasure{
			Seconds:        secs,
			Applications:   res.Applications,
			Passes:         res.Passes,
			PairsExamined:  res.Stats.PairsExamined,
			LHSEvaluations: res.Stats.LHSEvaluations,
		}, res
	}
	start := time.Now()
	seedRes, err := seedref.Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	seedM := chaseMeasure{
		Seconds:      time.Since(start).Seconds(),
		Applications: seedRes.Applications,
		Passes:       seedRes.Passes,
	}
	fullM, fullRes := timeChase(semantics.EnforceFullScan)
	wlM, wlRes := timeChase(semantics.Enforce)
	// The frozen seed copy does not count stats; fill from the compiled
	// scan (identical visit structure).
	seedM.PairsExamined = fullM.PairsExamined
	seedM.LHSEvaluations = fullM.LHSEvaluations

	assertSameChase(t, "fullscan-vs-seed", fullRes, seedRes)
	assertSameChase(t, "worklist-vs-seed", wlRes, seedRes)
	report.Chase = chaseSection{
		SeedFullScan:     seedM,
		CompiledFullScan: fullM,
		Worklist:         wlM,
		SpeedupVsSeed:    seedM.Seconds / wlM.Seconds,
		SpeedupVsFull:    fullM.Seconds / wlM.Seconds,
	}

	// --- Rule set: interpreted seed matcher vs compiled kernel over the
	// blocked candidates of the derived RCKs ---
	setup, err := experiments.NewSetup(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := blocking.Block(setup.D, setup.RCKBlockingKey())
	if err != nil {
		t.Fatal(err)
	}
	rules := matching.NewRuleSet(setup.RCKs...)

	start = time.Now()
	seedMatches, err := seedMatchCandidates(setup.D, setup.RCKs, cands)
	if err != nil {
		t.Fatal(err)
	}
	seedSecs := time.Since(start).Seconds()
	start = time.Now()
	compiledMatches, err := rules.MatchCandidates(setup.D, cands)
	if err != nil {
		t.Fatal(err)
	}
	compiledSecs := time.Since(start).Seconds()
	if seedMatches.Len() != compiledMatches.Len() ||
		seedMatches.IntersectCount(compiledMatches) != seedMatches.Len() {
		t.Fatalf("rule set divergence: seed %d matches, compiled %d", seedMatches.Len(), compiledMatches.Len())
	}
	report.RuleSet = ruleSetSection{
		Candidates: cands.Len(),
		Matches:    compiledMatches.Len(),
		Seed:       pathMeasure{Seconds: seedSecs, PerSecond: float64(cands.Len()) / seedSecs},
		Compiled:   pathMeasure{Seconds: compiledSecs, PerSecond: float64(cands.Len()) / compiledSecs},
		Speedup:    seedSecs / compiledSecs,
	}

	// --- Engine: MatchBatch throughput through the same kernel ---
	plan, err := engine.Compile(setup.Dataset.Ctx, setup.RCKs, []blocking.KeySpec{setup.RCKBlockingKey()})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(plan, engine.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(setup.Dataset.Credit); err != nil {
		t.Fatal(err)
	}
	batch := make([][]string, setup.Dataset.Billing.Len())
	for i, tp := range setup.Dataset.Billing.Tuples {
		batch[i] = tp.Values
	}
	if _, err := eng.MatchBatch(batch); err != nil { // warm-up
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := eng.MatchBatch(batch); err != nil {
		t.Fatal(err)
	}
	engSecs := time.Since(start).Seconds()
	report.Engine = engineSection{
		Queries:   len(batch),
		Workers:   1,
		Seconds:   engSecs,
		PerSecond: float64(len(batch)) / engSecs,
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (chase speedup vs seed: %.1fx)", out, report.Chase.SpeedupVsSeed)
}

type execBenchReport struct {
	GeneratedAt  string         `json:"generated_at"`
	GoVersion    string         `json:"go_version"`
	MaxProcs     int            `json:"gomaxprocs"`
	CorpusK      int            `json:"corpus_k"`
	LeftRecords  int            `json:"left_records"`
	RightRecords int            `json:"right_records"`
	Chase        chaseSection   `json:"chase"`
	RuleSet      ruleSetSection `json:"ruleset"`
	Engine       engineSection  `json:"engine"`
}

type chaseMeasure struct {
	Seconds        float64 `json:"seconds"`
	Applications   int     `json:"applications"`
	Passes         int     `json:"passes"`
	PairsExamined  int64   `json:"pairs_examined"`
	LHSEvaluations int64   `json:"lhs_evaluations"`
}

type chaseSection struct {
	SeedFullScan     chaseMeasure `json:"seed_full_scan"`
	CompiledFullScan chaseMeasure `json:"compiled_full_scan"`
	Worklist         chaseMeasure `json:"worklist"`
	SpeedupVsSeed    float64      `json:"worklist_speedup_vs_seed"`
	SpeedupVsFull    float64      `json:"worklist_speedup_vs_compiled_full_scan"`
}

type pathMeasure struct {
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"per_second"`
}

type ruleSetSection struct {
	Candidates int         `json:"candidates"`
	Matches    int         `json:"matches"`
	Seed       pathMeasure `json:"seed_interpreted"`
	Compiled   pathMeasure `json:"compiled_kernel"`
	Speedup    float64     `json:"speedup"`
}

type engineSection struct {
	Queries   int     `json:"queries"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	PerSecond float64 `json:"queries_per_second"`
}

func assertSameChase(t *testing.T, label string, got semantics.EnforceResult, want seedref.Result) {
	t.Helper()
	if got.Applications != want.Applications || got.Passes != want.Passes {
		t.Fatalf("%s: applications/passes = %d/%d, want %d/%d",
			label, got.Applications, got.Passes, want.Applications, want.Passes)
	}
	same := func(a, b *record.Instance) {
		t.Helper()
		for i, ta := range a.Tuples {
			tb := b.Tuples[i]
			for j := range ta.Values {
				if ta.Values[j] != tb.Values[j] {
					t.Fatalf("%s: t%d[%d] = %q vs %q", label, ta.ID, j, ta.Values[j], tb.Values[j])
				}
			}
		}
	}
	same(got.Instance.Left, want.Instance.Left)
	same(got.Instance.Right, want.Instance.Right)
}

// --- seed baselines ---
//
// The chase baseline is seedref.Enforce, the frozen verbatim copy of
// the pre-kernel implementation shared with the equivalence property
// tests (internal/semantics/seedref). The rule-set baseline below is
// the seed RuleSet.Match, verbatim.

// seedMatchCandidates is the seed rule-set matcher: per-pair interpreted
// conjunct evaluation through Instance.Get.
func seedMatchCandidates(d *record.PairInstance, keys []core.Key, candidates *metrics.PairSet) (*metrics.PairSet, error) {
	matchConjuncts := func(cs []core.Conjunct, t1, t2 *record.Tuple) (bool, error) {
		for _, c := range cs {
			v1, err := d.Left.Get(t1, c.Pair.Left)
			if err != nil {
				return false, err
			}
			v2, err := d.Right.Get(t2, c.Pair.Right)
			if err != nil {
				return false, err
			}
			if !c.Op.Similar(v1, v2) {
				return false, nil
			}
		}
		return true, nil
	}
	out := metrics.NewPairSet()
	for _, p := range candidates.Pairs() {
		t1, ok := d.Left.ByID(p.Left)
		if !ok {
			return nil, fmt.Errorf("missing left tuple %d", p.Left)
		}
		t2, ok := d.Right.ByID(p.Right)
		if !ok {
			return nil, fmt.Errorf("missing right tuple %d", p.Right)
		}
		for _, k := range keys {
			m, err := matchConjuncts(k.Conjuncts, t1, t2)
			if err != nil {
				return nil, err
			}
			if m {
				out.Add(p)
				break
			}
		}
	}
	return out, nil
}
