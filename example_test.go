package mdmatch_test

import (
	"fmt"
	"log"
	"os"
	"strings"

	"mdmatch"
)

// personCtx builds a small self-match context shared by the examples.
func personCtx() (mdmatch.Pair, *mdmatch.Relation) {
	people, err := mdmatch.StringsRelation("people", "name", "phone", "city")
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := mdmatch.NewPair(people, people)
	if err != nil {
		log.Fatal(err)
	}
	return ctx, people
}

// ExampleCompilePlan compiles matching keys and blocking specs into an
// executable plan once; the plan then serves any number of engines and
// queries.
func ExampleCompilePlan() {
	ctx, _ := personCtx()
	target, err := mdmatch.NewTarget(ctx,
		mdmatch.AttrList{"name", "phone", "city"},
		mdmatch.AttrList{"name", "phone", "city"})
	if err != nil {
		log.Fatal(err)
	}
	key, err := mdmatch.NewKey(ctx, target, []mdmatch.Conjunct{
		mdmatch.C("name", mdmatch.DL(0.8), "name"),
		mdmatch.EqC("phone", "phone"),
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := mdmatch.CompilePlan(ctx,
		[]mdmatch.Key{key},
		[]mdmatch.KeySpec{mdmatch.NewKeySpec(mdmatch.P("phone", "phone"))})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// plan: 1 rules, 0 negative, 2 fields, 1 blocking keys [phone|phone]
}

// ExampleNewEngine serves matching queries: records are indexed under
// their blocking keys, queries retrieve candidates and evaluate the
// compiled rules.
func ExampleNewEngine() {
	ctx, _ := personCtx()
	target, err := mdmatch.NewTarget(ctx,
		mdmatch.AttrList{"name", "phone", "city"},
		mdmatch.AttrList{"name", "phone", "city"})
	if err != nil {
		log.Fatal(err)
	}
	key, err := mdmatch.NewKey(ctx, target, []mdmatch.Conjunct{
		mdmatch.C("name", mdmatch.DL(0.8), "name"),
		mdmatch.EqC("phone", "phone"),
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := mdmatch.CompilePlan(ctx,
		[]mdmatch.Key{key},
		[]mdmatch.KeySpec{mdmatch.NewKeySpec(mdmatch.P("phone", "phone"))})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := mdmatch.NewEngine(plan, mdmatch.EngineWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Add(1, []string{"Robert Brady", "555-0100", "Lowell"}); err != nil {
		log.Fatal(err)
	}
	if err := eng.Add(2, []string{"Dorothy Ramos", "555-0111", "Salem"}); err != nil {
		log.Fatal(err)
	}
	res, err := eng.MatchOne([]string{"Robert Bradyy", "555-0100", "Boston"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches=%v candidates=%d compared=%d\n", res.Matches, res.Candidates, res.Compared)
	// Output:
	// matches=[1] candidates=1 compared=1
}

// ExampleNewStreamEnforcer enforces matching dependencies ONLINE:
// records stream in, each insertion chases only the frontier the new
// record touches, and the enforcer answers with the record's cluster.
// Note the value resolution: record 1's truncated name grows to the
// fuller form its cluster-mate carries.
func ExampleNewStreamEnforcer() {
	ctx, _ := personCtx()
	sigma := []mdmatch.MD{}
	md, err := mdmatch.NewMD(ctx,
		[]mdmatch.Conjunct{mdmatch.EqC("phone", "phone")},
		[]mdmatch.AttrPair{mdmatch.P("name", "name"), mdmatch.P("city", "city")})
	if err != nil {
		log.Fatal(err)
	}
	sigma = append(sigma, md)

	enf, err := mdmatch.NewStreamEnforcer(ctx, sigma)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enf.Insert(1, []string{"R. Brady", "555-0100", "Lowell"}); err != nil {
		log.Fatal(err)
	}
	res, err := enf.Insert(2, []string{"Robert Brady", "555-0100", "Lowell"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record 2: cluster=%d applied=%v applications=%d\n",
		res.Cluster, res.AppliedMDs, res.Applications)
	vals, _ := enf.Record(1)
	fmt.Printf("record 1 resolved: %v\n", vals)
	cl, _ := enf.ClusterOf(2)
	fmt.Printf("cluster %d members: %v\n", cl.ID, cl.Members)
	// Output:
	// record 2: cluster=1 applied=[0] applications=1
	// record 1 resolved: [Robert Brady 555-0100 Lowell]
	// cluster 1 members: [1 2]
}

// ExampleOpenStore is the durability cycle: a durable engine journals
// every mutation to a write-ahead log, snapshots on demand, and a
// "restarted" process — a fresh enforcer + engine over the same
// directory — recovers the exact pre-shutdown state: resolved values,
// clusters, and the match index, without re-ingesting anything.
func ExampleOpenStore() {
	ctx, _ := personCtx()
	target, err := mdmatch.NewTarget(ctx,
		mdmatch.AttrList{"name", "phone", "city"},
		mdmatch.AttrList{"name", "phone", "city"})
	if err != nil {
		log.Fatal(err)
	}
	key, err := mdmatch.NewKey(ctx, target, []mdmatch.Conjunct{mdmatch.EqC("phone", "phone")})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := mdmatch.CompilePlan(ctx,
		[]mdmatch.Key{key},
		[]mdmatch.KeySpec{mdmatch.NewKeySpec(mdmatch.P("phone", "phone"))})
	if err != nil {
		log.Fatal(err)
	}
	md, err := mdmatch.NewMD(ctx,
		[]mdmatch.Conjunct{mdmatch.EqC("phone", "phone")},
		[]mdmatch.AttrPair{mdmatch.P("name", "name"), mdmatch.P("city", "city")})
	if err != nil {
		log.Fatal(err)
	}
	sigma := []mdmatch.MD{md}

	dir, err := os.MkdirTemp("", "mdmatch-store")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// boot is "one process": a fresh enforcer and engine over the same
	// data directory. The first boot finds it empty; later boots
	// recover snapshot + WAL.
	boot := func() (*mdmatch.Engine, *mdmatch.Store) {
		enf, err := mdmatch.NewStreamEnforcer(ctx, sigma)
		if err != nil {
			log.Fatal(err)
		}
		st, err := mdmatch.OpenStore(dir, plan, enf)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := mdmatch.NewEngine(plan,
			mdmatch.EngineWorkers(1), mdmatch.EngineStream(enf), mdmatch.EngineStore(st))
		if err != nil {
			log.Fatal(err)
		}
		return eng, st
	}

	eng, st := boot()
	if _, err := eng.AddClustered(1, []string{"R. Brady", "555-0100", "Lowell"}); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.AddClustered(2, []string{"Robert Brady", "555-0100", "Lowell"}); err != nil {
		log.Fatal(err)
	}
	lsn, err := eng.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot at LSN %d\n", lsn)
	st.Close() // "process exit"

	eng2, st2 := boot() // "restart": recovery happens inside NewEngine
	defer st2.Close()
	vals, _ := eng2.Stream().Record(1)
	fmt.Printf("recovered record 1: %v\n", vals)
	cl, _ := eng2.Stream().ClusterOf(2)
	fmt.Printf("recovered cluster %d members: %v\n", cl.ID, cl.Members)
	res, err := eng2.MatchOne([]string{"Bob Brady", "555-0100", "Boston"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered matches: %v\n", res.Matches)
	// Output:
	// snapshot at LSN 2
	// recovered record 1: [Robert Brady 555-0100 Lowell]
	// recovered cluster 1 members: [1 2]
	// recovered matches: [1 2]
}

// ExampleNewRegistry instruments the serving stack with the
// zero-dependency metrics registry: layer observers push latency
// histograms as operations happen and expose the layers' own counters
// at scrape time, rendered in Prometheus text exposition format.
func ExampleNewRegistry() {
	ctx, _ := personCtx()
	target, err := mdmatch.NewTarget(ctx,
		mdmatch.AttrList{"name", "phone", "city"},
		mdmatch.AttrList{"name", "phone", "city"})
	if err != nil {
		log.Fatal(err)
	}
	key, err := mdmatch.NewKey(ctx, target, []mdmatch.Conjunct{
		mdmatch.C("name", mdmatch.DL(0.8), "name"),
		mdmatch.EqC("phone", "phone"),
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := mdmatch.CompilePlan(ctx,
		[]mdmatch.Key{key},
		[]mdmatch.KeySpec{mdmatch.NewKeySpec(mdmatch.P("phone", "phone"))})
	if err != nil {
		log.Fatal(err)
	}
	reg := mdmatch.NewRegistry()
	eng, err := mdmatch.NewEngine(plan,
		mdmatch.EngineWorkers(1), mdmatch.EngineObserver(reg))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Add(1, []string{"Robert Brady", "555-0100", "Lowell"}); err != nil {
		log.Fatal(err)
	}
	if err := eng.Add(2, []string{"Dorothy Ramos", "555-0111", "Salem"}); err != nil {
		log.Fatal(err)
	}
	for _, q := range [][]string{
		{"Robert Bradyy", "555-0100", "Boston"},
		{"D. Ramos", "555-0111", "Salem"},
	} {
		if _, err := eng.MatchOne(q); err != nil {
			log.Fatal(err)
		}
	}
	// Render the whole registry (what GET /metrics serves) and show the
	// deterministic samples; latency histograms are in there too.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "mdmatch_engine_indexed_records ") ||
			strings.HasPrefix(line, "mdmatch_engine_queries_total ") ||
			strings.HasPrefix(line, "mdmatch_engine_matched_total ") {
			fmt.Println(line)
		}
	}
	// Output:
	// mdmatch_engine_indexed_records 2
	// mdmatch_engine_matched_total 1
	// mdmatch_engine_queries_total 2
}
