GO ?= go

.PHONY: build test bench bench-exec bench-stream bench-store bench-obs bench-parallel bench-fault soak soak-smoke vet docs-check clean

build:
	$(GO) build ./...

vet:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# bench measures serving-engine throughput (1, 4, GOMAXPROCS workers)
# against the single-threaded baseline driver and records the result in
# BENCH_engine.json, the repo's perf trajectory. BENCH_ENGINE_K overrides
# the corpus scale (default 4000 holders ≈ 10k+ queries).
bench:
	BENCH_ENGINE_OUT=$(CURDIR)/BENCH_engine.json $(GO) test -run TestWriteBenchReport -count=1 -v ./internal/engine/
	@cat BENCH_engine.json

# bench-exec measures every execution path of the exec kernel against
# its pre-kernel (seed) implementation — enforcement chase (seed
# interpreted full scan vs compiled full scan vs worklist), rule-set
# matching, and engine serving — and records the result in
# BENCH_exec.json, including a values section with the interned-path
# timings and old-vs-new equivalence cross-checks (same matches as the
# string paths; same applications, passes and stable instance as
# seedref) and allocs_per_op for every measure. BENCH_EXEC_K overrides
# the dataset scale (default 1000 holders).
bench-exec:
	BENCH_EXEC_OUT=$(CURDIR)/BENCH_exec.json $(GO) test -run TestWriteExecBenchReport -count=1 -timeout 60m -v .
	@cat BENCH_exec.json

# bench-stream measures streaming-enforcement latency: per-insert cost
# of the incremental chase (internal/stream) across dataset sizes, for
# the full dedup rule set and the blockable-only subset, against the
# full-re-chase alternative, with batch-vs-stream bit-identity flags.
# Recorded in BENCH_stream.json. BENCH_STREAM_K overrides the largest
# corpus scale (default 2000 holders).
bench-stream:
	BENCH_STREAM_OUT=$(CURDIR)/BENCH_stream.json $(GO) test -run TestWriteStreamBenchReport -count=1 -timeout 30m -v ./internal/stream/
	@cat BENCH_stream.json

# bench-store measures durability (internal/store): WAL append
# throughput with and without the per-append fsync, snapshot size and
# write time, and what durability buys on restart — cold-start recovery
# from a snapshot against the full re-chase a stateless restart pays —
# with a recovered-state-equals-rechased-state cross-check. Recorded in
# BENCH_store.json. BENCH_STORE_K overrides the largest corpus scale
# (default 4000 holders).
bench-store:
	BENCH_STORE_OUT=$(CURDIR)/BENCH_store.json $(GO) test -run TestWriteStoreBenchReport -count=1 -timeout 30m -v ./internal/engine/
	@cat BENCH_store.json

# bench-obs measures what enabling the observability hooks costs on the
# two hot paths — engine.MatchBatch and the per-insert incremental chase
# — by running each with a nil observer (hooks compiled out at the call
# site, structurally zero cost) and again with the full obs stack
# attached, plus a traced-vs-untraced pass over the same paths (one
# request root span per op against the no-root-span baseline, where
# every trace.StartSpan is a single context lookup). Recorded in
# BENCH_obs.json; the test fails if enabled-hook or enabled-trace
# overhead exceeds 3% (BENCH_OBS_MAX_OVERHEAD overrides the gate,
# BENCH_OBS_K the corpus scale, default 2000 holders).
bench-obs:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run TestWriteObsBenchReport -count=1 -timeout 30m -v ./internal/obs/
	@cat BENCH_obs.json

# bench-parallel records the deterministic-parallelism scaling curves:
# for each of the three parallelized layers — engine.MatchBatch serving,
# the batch worklist chase (semantics.EnforceWorkers) and the
# incremental stream chase — it measures a 1/2/4/GOMAXPROCS worker
# curve with speedup_vs_1 and merges it as a "parallel" section into
# the layer's existing BENCH_*.json (other sections untouched). On a
# 1-core box every speedup hovers near 1.0; that run is the
# non-regression record, re-run on a multi-core box for the scaling
# record. BENCH_ENGINE_K / BENCH_EXEC_K / BENCH_STREAM_K override the
# corpus scales.
bench-parallel:
	BENCH_PARALLEL_ENGINE_OUT=$(CURDIR)/BENCH_engine.json $(GO) test -run TestWriteParallelBenchReport -count=1 -timeout 30m -v ./internal/engine/
	BENCH_PARALLEL_EXEC_OUT=$(CURDIR)/BENCH_exec.json $(GO) test -run TestWriteParallelExecReport -count=1 -timeout 30m -v .
	BENCH_PARALLEL_STREAM_OUT=$(CURDIR)/BENCH_stream.json $(GO) test -run TestWriteParallelStreamReport -count=1 -timeout 30m -v ./internal/stream/

# bench-fault runs the robustness suite and records the admission gate:
# first the crash-point fault matrix + fault/retry unit tests under
# -race, then the admission-overhead report — MatchBatchCtx with a live
# cancellable context (every HTTP request's shape) versus a background
# context — merged as an "admission" section into BENCH_engine.json.
# The test FAILS if the hook costs more than 1%
# (BENCH_ADMISSION_MAX_OVERHEAD overrides the gate, BENCH_ENGINE_K the
# corpus scale).
bench-fault:
	$(GO) test -race -count=1 -run 'TestRecoveryEquivalenceUnderFaults' -v ./internal/engine/
	$(GO) test -race -count=1 ./internal/fault/ ./internal/retry/
	BENCH_ADMISSION_OUT=$(CURDIR)/BENCH_engine.json $(GO) test -run TestWriteAdmissionBenchReport -count=1 -timeout 30m -v ./internal/engine/
	@cat BENCH_engine.json

# soak is the scale tier (build tag `scale`): SOAK_RECORDS synthesized
# credit records (default 1M) driven through the durable engine —
# InsertBatch bulk with timed single inserts — while a background
# snapshotter streams captures concurrently and two mid-soak crash
# faults force full recoveries. Asserts the bounded-memory contract
# (heap high-water mark < 3.25 GiB under a runtime soft memory limit,
# keeping process RSS under 4 GB), the snapshot non-stall contract
# (single-insert p99 < 50 ms even while a snapshot streams), and
# bit-identical kill recovery; merges a "scale"
# section into BENCH_store.json / BENCH_stream.json.
SOAK_RECORDS ?= 1000000
soak:
	SOAK_RECORDS=$(SOAK_RECORDS) SOAK_STORE_OUT=$(CURDIR)/BENCH_store.json SOAK_STREAM_OUT=$(CURDIR)/BENCH_stream.json \
		$(GO) test -tags scale -run TestSoakScale -count=1 -timeout 60m -v ./internal/engine/

# soak-smoke is the CI tier of the same harness: 50k records, no report
# rewrite, gated against the recorded 50k scale entry in
# BENCH_store.json (fails on a >10% stall-p99 or heap-watermark
# regression).
soak-smoke:
	SOAK_RECORDS=50000 SOAK_GATE=$(CURDIR)/BENCH_store.json \
		$(GO) test -tags scale -run TestSoakScale -count=1 -timeout 20m -v ./internal/engine/

# docs-check verifies the documentation layer: formatting, vet, a
# package comment on every package, and resolvable relative links in
# the markdown docs.
docs-check: vet
	$(GO) run ./cmd/docscheck

clean:
	$(GO) clean ./...
