GO ?= go

.PHONY: build test bench vet clean

build:
	$(GO) build ./...

vet:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# bench measures serving-engine throughput (1, 4, GOMAXPROCS workers)
# against the single-threaded baseline driver and records the result in
# BENCH_engine.json, the repo's perf trajectory. BENCH_ENGINE_K overrides
# the corpus scale (default 4000 holders ≈ 10k+ queries).
bench:
	BENCH_ENGINE_OUT=$(CURDIR)/BENCH_engine.json $(GO) test -run TestWriteBenchReport -count=1 -v ./internal/engine/
	@cat BENCH_engine.json

clean:
	$(GO) clean ./...
